"""Tests for index persistence and incremental edge updates."""

import numpy as np
import pytest

from repro.core import (
    build_hgpa_index,
    delete_edge,
    insert_edge,
    load_hgpa_index,
    power_iteration_ppv,
    save_hgpa_index,
)
from repro.errors import GraphError, SerializationError
from repro.graph import hierarchical_community_digraph
from repro.metrics import l_inf

from conftest import EXACT_ATOL, TIGHT_TOL


class TestPersistence:
    def test_roundtrip_queries_identical(self, hgpa_small, tmp_path):
        path = tmp_path / "index.npz"
        save_hgpa_index(hgpa_small, path)
        loaded = load_hgpa_index(path)
        for u in (0, 42, 150):
            np.testing.assert_array_equal(loaded.query(u), hgpa_small.query(u))

    def test_roundtrip_metadata(self, hgpa_small, tmp_path):
        path = tmp_path / "index.npz"
        save_hgpa_index(hgpa_small, path)
        loaded = load_hgpa_index(path)
        assert loaded.alpha == hgpa_small.alpha
        assert loaded.tol == hgpa_small.tol
        assert loaded.prune == hgpa_small.prune
        assert loaded.graph == hgpa_small.graph
        assert loaded.total_bytes() == hgpa_small.total_bytes()
        assert loaded.total_nnz() == hgpa_small.total_nnz()

    def test_roundtrip_hierarchy(self, hgpa_small, tmp_path):
        path = tmp_path / "index.npz"
        save_hgpa_index(hgpa_small, path)
        loaded = load_hgpa_index(path)
        loaded.hierarchy.validate()
        assert (
            loaded.hierarchy.hub_counts_per_level()
            == hgpa_small.hierarchy.hub_counts_per_level()
        )
        np.testing.assert_array_equal(
            loaded.hierarchy.hub_level, hgpa_small.hierarchy.hub_level
        )

    def test_build_costs_survive(self, hgpa_small, tmp_path):
        path = tmp_path / "index.npz"
        save_hgpa_index(hgpa_small, path)
        loaded = load_hgpa_index(path)
        assert loaded.offline_seconds() == pytest.approx(
            hgpa_small.offline_seconds(), rel=1e-9
        )

    def test_distributed_deploys_from_loaded(self, hgpa_small, tmp_path):
        from repro.distributed import DistributedHGPA

        path = tmp_path / "index.npz"
        save_hgpa_index(hgpa_small, path)
        loaded = load_hgpa_index(path)
        dep = DistributedHGPA(loaded, 3)
        vec, _ = dep.query(11)
        np.testing.assert_allclose(vec, hgpa_small.query(11), atol=1e-9)

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SerializationError):
            load_hgpa_index(path)


@pytest.fixture(scope="module")
def update_graph():
    g = hierarchical_community_digraph(300, avg_out_degree=4, seed=13)
    return g.with_dangling_policy("self_loop")


@pytest.fixture(scope="module")
def update_index(update_graph):
    return build_hgpa_index(update_graph, tol=TIGHT_TOL, max_levels=4, seed=0)


def _assert_exact(index, nodes):
    for u in nodes:
        ref = power_iteration_ppv(index.graph, u, tol=TIGHT_TOL)
        assert l_inf(index.query(u), ref) < EXACT_ATOL, u


class TestInsertEdge:
    def test_same_leaf_insert_exact_and_local(self, update_index):
        # Pick two nodes in the same leaf: no promotion needed.
        leaf = next(sg for sg in update_index.hierarchy.leaves() if sg.num_nodes >= 2)
        u, v = int(leaf.nodes[0]), int(leaf.nodes[1])
        if update_index.graph.has_edge(u, v):
            u, v = v, u
        new_index, stats = insert_edge(update_index, u, v)
        assert stats.changed and stats.promoted_hub is None
        assert new_index.graph.has_edge(u, v)
        assert stats.rebuild_fraction < 0.9  # locality: siblings untouched
        _assert_exact(new_index, [u, v, 0, 150])

    def test_cross_partition_insert_promotes(self, update_index):
        """An edge between different top-level children of a non-hub pair
        must promote the source to a hub — and stay exact."""
        h = update_index.hierarchy
        root = h.root
        assert len(root.children) >= 2
        hub_set = set(h.hub_nodes().tolist())
        child_a = h.subgraphs[root.children[0]]
        child_b = h.subgraphs[root.children[1]]
        u = next(int(x) for x in child_a.nodes if int(x) not in hub_set)
        v = next(int(x) for x in child_b.nodes if int(x) not in hub_set)
        assert not update_index.graph.has_edge(u, v)
        new_index, stats = insert_edge(update_index, u, v)
        assert stats.promoted_hub == u
        assert new_index.hierarchy.is_hub(u)
        new_index.hierarchy.validate()
        _assert_exact(new_index, [u, v, 7])

    def test_promotion_scrubs_deeper_levels_and_leaf_vector(self, update_index):
        """Regression for the promotion bookkeeping: the promoted node must
        vanish from every deeper subgraph's node/hub lists and its old
        ``("leaf", u)`` vector must be dropped, not left stale."""
        h = update_index.hierarchy
        root = h.root
        hub_set = set(h.hub_nodes().tolist())
        child_a = h.subgraphs[root.children[0]]
        child_b = h.subgraphs[root.children[1]]
        u = next(int(x) for x in child_a.nodes if int(x) not in hub_set)
        v = next(int(x) for x in child_b.nodes if int(x) not in hub_set)
        assert u in update_index.leaf_ppv  # non-hub: has a leaf vector
        new_index, stats = insert_edge(update_index, u, v)
        assert stats.promoted_hub == u
        new_h = new_index.hierarchy
        owners = [
            sg for sg in new_h.subgraphs if u in set(sg.hubs.tolist())
        ]
        assert [sg.node_id for sg in owners] == [root.node_id]
        for sg in new_h.subgraphs:
            if sg.level > 0:
                assert u not in set(sg.nodes.tolist()), sg.node_id
                assert u not in set(sg.hubs.tolist()), sg.node_id
        # Old leaf vector dropped, hub-side vectors rebuilt for the new role.
        assert u not in new_index.leaf_ppv
        assert ("leaf", u) not in new_index.build_cost
        assert u in new_index.hub_partials and u in new_index.skeleton_cols
        new_h.validate()
        _assert_exact(new_index, [u, v])

    def test_promotion_of_deeper_hub_drops_old_hub_vectors(self, update_index):
        """A hub of a deeper level promoted to the root must lose its old
        deep-level ``("hub", u)`` / ``("skel", u)`` vectors (they are
        defined on the wrong subgraph) and get root-level replacements."""
        h = update_index.hierarchy
        root = h.root
        root_hubs = set(root.hubs.tolist())
        u = deep_sg = None
        for sg in h.subgraphs:
            if sg.level > 0 and sg.hubs.size:
                deep = next(
                    (int(x) for x in sg.hubs.tolist() if int(x) not in root_hubs),
                    None,
                )
                if deep is not None:
                    u, deep_sg = deep, sg
                    break
        assert u is not None, "fixture hierarchy has no deep hub"
        child_of_u = next(
            cid
            for cid in root.children
            if u in set(h.subgraphs[cid].nodes.tolist())
        )
        other = next(cid for cid in root.children if cid != child_of_u)
        v = next(
            int(x)
            for x in h.subgraphs[other].nodes.tolist()
            if int(x) not in root_hubs
            and not update_index.graph.has_edge(u, int(x))
        )
        old_hub_vec = update_index.hub_partials[u]
        old_skel_vec = update_index.skeleton_cols[u]
        new_index, stats = insert_edge(update_index, u, v)
        assert stats.promoted_hub == u
        new_h = new_index.hierarchy
        owners = [
            sg.node_id for sg in new_h.subgraphs if u in set(sg.hubs.tolist())
        ]
        assert owners == [root.node_id]
        assert u not in set(new_h.subgraphs[deep_sg.node_id].hubs.tolist())
        # Replacements are computed on the root view, not carried over.
        assert new_index.hub_partials[u] is not old_hub_vec
        assert new_index.skeleton_cols[u] is not old_skel_vec
        new_h.validate()
        _assert_exact(new_index, [u, v])

    def test_duplicate_insert_noop(self, update_index):
        src, dst = update_index.graph.edge_arrays()
        u, v = int(src[0]), int(dst[0])
        same, stats = insert_edge(update_index, u, v)
        assert same is update_index
        assert not stats.changed

    def test_old_index_still_valid(self, update_index, update_graph):
        leaf = next(sg for sg in update_index.hierarchy.leaves() if sg.num_nodes >= 2)
        u, v = int(leaf.nodes[0]), int(leaf.nodes[-1])
        insert_edge(update_index, u, v)
        ref = power_iteration_ppv(update_graph, u, tol=TIGHT_TOL)
        assert l_inf(update_index.query(u), ref) < EXACT_ATOL

    def test_bad_endpoints(self, update_index):
        """Out-of-range endpoints are graph errors naming the edge, in
        both directions and for both operations."""
        with pytest.raises(GraphError, match=r"edge \(-1, 0\): source"):
            insert_edge(update_index, -1, 0)
        with pytest.raises(GraphError, match=r"edge \(0, 10000\): target"):
            insert_edge(update_index, 0, 10_000)
        with pytest.raises(GraphError, match=r"edge \(10000, 0\): source"):
            delete_edge(update_index, 10_000, 0)
        with pytest.raises(GraphError, match=r"edge \(0, -3\): target"):
            delete_edge(update_index, 0, -3)

    def test_chained_updates_stay_exact(self, update_index):
        rng = np.random.default_rng(3)
        index = update_index
        for _ in range(3):
            u = int(rng.integers(0, index.graph.num_nodes))
            v = int(rng.integers(0, index.graph.num_nodes))
            if u == v:
                continue
            index, _ = insert_edge(index, u, v)
        _assert_exact(index, [5, 100, 250])


class TestDeleteEdge:
    def test_delete_exact(self, update_index):
        # Delete an edge whose source keeps at least one other edge.
        src, dst = update_index.graph.edge_arrays()
        deg = update_index.graph.out_degrees
        pick = next(i for i in range(src.size) if deg[src[i]] > 1)
        u, v = int(src[pick]), int(dst[pick])
        new_index, stats = delete_edge(update_index, u, v)
        assert stats.changed
        assert not new_index.graph.has_edge(u, v)
        _assert_exact(new_index, [u, v])

    def test_delete_missing_noop(self, update_index):
        n = update_index.graph.num_nodes
        for u in range(n):
            for v in range(n):
                if u != v and not update_index.graph.has_edge(u, v):
                    same, stats = delete_edge(update_index, u, v)
                    assert same is update_index and not stats.changed
                    return

    def test_delete_would_dangle(self, update_index):
        deg = update_index.graph.out_degrees
        u = int(np.argmin(deg))
        if deg[u] == 1:
            v = int(update_index.graph.successors(u)[0])
            with pytest.raises(GraphError):
                delete_edge(update_index, u, v)

    def test_insert_then_delete_restores(self, update_index):
        leaf = next(sg for sg in update_index.hierarchy.leaves() if sg.num_nodes >= 2)
        u, v = int(leaf.nodes[0]), int(leaf.nodes[1])
        if update_index.graph.has_edge(u, v):
            pytest.skip("edge already present")
        with_edge, _ = insert_edge(update_index, u, v)
        restored, _ = delete_edge(with_edge, u, v)
        assert restored.graph == update_index.graph
        np.testing.assert_allclose(
            restored.query(u), update_index.query(u), atol=1e-8
        )
