"""Sharded query routing: router-vs-flat exactness, policies, failover.

The subsystem contract mirrors serving's: whatever path a batch takes —
owner-affinity, round-robin, least-loaded, through per-shard caches,
across a replica failure — the merged answer must match the unsharded
backend to 1e-12.
"""

import numpy as np
import pytest

from repro.distributed import DistributedGPA, NetworkMeter
from repro.errors import QueryError, ServingError, ShardingError
from repro.serving import PPVCache, PPVService, SimulatedClock, as_backend
from repro.sharding import (
    LeastLoadedPolicy,
    OwnerAffinityPolicy,
    Replica,
    RoundRobinPolicy,
    Shard,
    ShardRouter,
    owner_map_from_partition,
)

ATOL = 1e-12
POLICIES = ("owner", "round_robin", "least_loaded")


@pytest.fixture(scope="module")
def owner_map(request):
    index = request.getfixturevalue("gpa_small")
    return owner_map_from_partition(index.partition, 4)


@pytest.fixture()
def router4(request, owner_map):
    """Fresh 4-shard, 2-replica router per test (stats/failover isolate)."""
    index = request.getfixturevalue("gpa_small")

    def build(policy="owner", **kwargs):
        kwargs.setdefault("owner_map", owner_map)
        kwargs.setdefault("clock", SimulatedClock())
        return ShardRouter([[index, index]] * 4, policy=policy, **kwargs)

    return build


def _stream(n, size=40, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=size, dtype=np.int64)


# ----------------------------------------------------------------------
class TestRouterExactness:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_dense_matches_flat_backend(self, gpa_small, router4, policy):
        router = router4(policy)
        nodes = _stream(gpa_small.graph.num_nodes)
        out, infos = router.query_many(nodes)
        ref, _ = gpa_small.query_many(nodes)
        np.testing.assert_allclose(out, ref, atol=ATOL, rtol=0)
        assert len(infos) == nodes.size
        assert all(info is not None for info in infos)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_topk_matches_flat_backend(self, gpa_small, router4, policy):
        router = router4(policy, cache_bytes=1 << 22)
        nodes = _stream(gpa_small.graph.num_nodes, size=25, seed=2)
        ids, scores, _ = router.query_many_topk(nodes, 12)
        rids, rscores, _ = gpa_small.query_many_topk(nodes, 12)
        np.testing.assert_array_equal(ids, rids)
        np.testing.assert_allclose(scores, rscores, atol=ATOL, rtol=0)

    def test_thresholded_topk_matches(self, gpa_small, router4):
        router = router4("owner")
        nodes = np.asarray([0, 7, 57, 150])
        ids, scores, _ = router.query_many_topk(nodes, 15, threshold=0.02)
        rids, rscores, _ = gpa_small.query_many_topk(nodes, 15, threshold=0.02)
        np.testing.assert_array_equal(ids, rids)
        np.testing.assert_allclose(scores, rscores, atol=ATOL, rtol=0)
        # The cut really drops entries: the pad marker appears somewhere.
        assert (ids == -1).any()

    def test_cached_rerun_still_exact(self, gpa_small, router4):
        router = router4("owner", cache_bytes=1 << 22)
        nodes = _stream(gpa_small.graph.num_nodes, size=30, seed=3)
        first, _ = router.query_many(nodes)
        second, infos = router.query_many(nodes)
        np.testing.assert_allclose(first, second, atol=0, rtol=0)
        assert all(info.cached for info in infos)
        np.testing.assert_allclose(
            second, gpa_small.query_many(nodes)[0], atol=ATOL, rtol=0
        )

    def test_empty_batch(self, router4):
        router = router4("round_robin")
        out, infos = router.query_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0, router.num_nodes) and infos == []
        ids, scores, infos = router.query_many_topk(
            np.empty(0, dtype=np.int64), 5
        )
        assert ids.shape == (0, 5) and infos == []

    def test_bad_k_rejected(self, router4):
        with pytest.raises(QueryError):
            router4("owner").query_many_topk([0], 0)

    def test_service_over_router(self, gpa_small, router4):
        """The router is a QueryBackend: PPVService drops on top unchanged."""
        router = router4("owner", cache_bytes=1 << 22)
        assert as_backend(router) is router
        service = PPVService(
            router, window=0.005, max_batch=8, clock=SimulatedClock()
        )
        stream = np.asarray([3, 40, 77, 3, 110, 40, 9, 199])
        out = service.serve(stream)
        for i, u in enumerate(stream.tolist()):
            np.testing.assert_allclose(
                out[i], gpa_small.query(u), atol=ATOL, rtol=0
            )


# ----------------------------------------------------------------------
class TestRoutingPolicies:
    def test_owner_affinity_sticky_and_partition_aligned(
        self, gpa_small, router4, owner_map
    ):
        router = router4("owner")
        nodes = _stream(gpa_small.graph.num_nodes, size=60, seed=4)
        _, infos = router.query_many(nodes)
        seen = {}
        for u, info in zip(nodes.tolist(), infos):
            # Same node always lands on the same shard...
            assert seen.setdefault(u, info.shard) == info.shard
            # ...and owned (non-hub) nodes land on their partition's shard.
            if owner_map[u] >= 0:
                assert info.shard == owner_map[u] % len(router.shards)

    def test_round_robin_spreads_evenly(self, router4):
        router = router4("round_robin")
        router.query_many(np.zeros(16, dtype=np.int64))  # even a hot node
        assert router.stats().queries_by_shard == [4, 4, 4, 4]
        assert router.stats().load_imbalance == 1.0

    def test_round_robin_stateful_across_batches(self, router4):
        router = router4("round_robin")
        router.query_many(np.zeros(3, dtype=np.int64))
        router.query_many(np.zeros(3, dtype=np.int64))
        # 6 queries over 4 shards: the second batch continues the cycle.
        assert router.stats().queries_by_shard == [2, 2, 1, 1]

    def test_least_loaded_balances_skew(self, router4):
        router = router4("least_loaded")
        # A Zipf-ish stream that owner-affinity would pile onto one shard.
        stream = np.repeat(np.asarray([7, 7, 7, 7, 9, 9, 11, 3]), 2)
        router.query_many(stream)
        assert router.stats().load_imbalance == 1.0

    def test_unknown_policy_rejected(self, router4):
        with pytest.raises(ShardingError, match="unknown routing policy"):
            router4("fastest")

    def test_owner_policy_needs_map(self, gpa_small):
        with pytest.raises(ShardingError, match="owner_map"):
            ShardRouter([[gpa_small]], policy="owner")

    def test_policy_instances_accepted(self, gpa_small, owner_map):
        for policy in (
            OwnerAffinityPolicy(owner_map),
            RoundRobinPolicy(),
            LeastLoadedPolicy(),
        ):
            router = ShardRouter([[gpa_small]] * 2, policy=policy)
            out, _ = router.query_many([5])
            np.testing.assert_allclose(
                out[0], gpa_small.query(5), atol=ATOL, rtol=0
            )

    def test_owner_map_from_partition(self, gpa_small):
        part = gpa_small.partition
        owners = owner_map_from_partition(part, 3)
        assert owners.shape == (gpa_small.graph.num_nodes,)
        assert np.all(owners[part.hubs] == -1)
        for p, members in enumerate(part.part_nodes):
            assert np.all(owners[members] == p % 3)
        with pytest.raises(ShardingError):
            owner_map_from_partition(part, 0)

    def test_owner_map_length_checked(self, gpa_small):
        router = ShardRouter(
            [[gpa_small]] * 2, policy="owner", owner_map=np.zeros(3, dtype=np.int64)
        )
        with pytest.raises(ShardingError, match="covers"):
            router.query_many([0])


# ----------------------------------------------------------------------
class TestFailover:
    def test_mid_stream_failure_and_recovery_exact(self, gpa_small, router4):
        """Kill a replica mid-stream, recover it later: every answer along
        the way must stay exact and traffic must reroute deterministically."""
        router = router4("owner", cache_bytes=None)
        nodes = _stream(gpa_small.graph.num_nodes, size=90, seed=5)
        ref, _ = gpa_small.query_many(nodes)

        out_a = np.vstack(
            [router.query_many(nodes[lo : lo + 10])[0] for lo in (0, 10, 20)]
        )
        for shard in router.shards:  # least-served rotation uses both
            if shard.batches >= 2:
                assert all(r.served_batches > 0 for r in shard.replicas)
        router.mark_down(0, 0)
        router.mark_down(1, 0)
        out_b, infos_b = router.query_many(nodes[30:60])
        assert all(
            info.replica == 1 for info in infos_b if info.shard in (0, 1)
        )
        router.mark_up(0, 0)
        router.mark_up(1, 0)
        out_c, _ = router.query_many(nodes[60:])
        out = np.vstack([out_a, out_b, out_c])
        np.testing.assert_allclose(out, ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_exact_after_failover(self, gpa_small, router4, policy):
        router = router4(policy)
        nodes = _stream(gpa_small.graph.num_nodes, size=40, seed=6)
        router.query_many(nodes[:20])
        for sid in range(len(router.shards)):
            router.mark_down(sid, 1)
        out, _ = router.query_many(nodes[20:])
        np.testing.assert_allclose(
            out, gpa_small.query_many(nodes[20:])[0], atol=ATOL, rtol=0
        )

    def test_timed_recovery_with_simulated_clock(self, gpa_small):
        clock = SimulatedClock()
        router = ShardRouter([[gpa_small, gpa_small]], clock=clock)
        router.mark_down(0, 0, for_seconds=5.0)
        _, infos = router.query_many([1, 2])
        assert {info.replica for info in infos} == {1}
        clock.advance(5.0)  # outage elapses: replica 0 is back in rotation
        _, infos = router.query_many([3, 4])
        assert any(info.replica == 0 for info in infos)

    def test_standalone_shard_timed_recovery(self, gpa_small):
        """A Shard used without a router honours timed outages too (its
        clock defaults to real time; here injected for determinism)."""
        clock = SimulatedClock()
        shard = Shard(0, [gpa_small], clock=clock)
        shard.mark_down(0, for_seconds=1.0)
        with pytest.raises(ShardingError, match="every replica"):
            shard.query_many([1])
        clock.advance(1.0)
        out, _ = shard.query_many([1])
        np.testing.assert_allclose(out[0], gpa_small.query(1), atol=ATOL, rtol=0)

    def test_whole_shard_down_raises(self, gpa_small):
        router = ShardRouter([[gpa_small], [gpa_small]])
        router.mark_down(0, 0)
        with pytest.raises(ShardingError, match="every replica"):
            router.query_many(np.arange(8))


# ----------------------------------------------------------------------
class TestShardStats:
    def test_traffic_metered_per_shard(self, gpa_small, router4):
        router = router4("round_robin")
        nodes = _stream(gpa_small.graph.num_nodes, size=16, seed=7)
        router.query_many(nodes)
        stats = router.stats()
        n = router.num_nodes
        # Each shard served 4 rows: 4 ids in (8 B each), 4 dense rows out.
        assert stats.bytes_by_shard == [4 * 8 + 4 * 8 * n] * 4
        assert stats.total_queries == 16
        assert stats.batches_by_shard == [1, 1, 1, 1]
        assert isinstance(router.meter, NetworkMeter)
        assert router.meter.total_bytes == stats.total_bytes

    def test_topk_ships_k_entries_not_rows(self, gpa_small):
        router = ShardRouter([[gpa_small]])
        router.query_many_topk([3, 5], 10)
        stats = router.stats()
        assert stats.bytes_by_shard == [2 * 8 + 2 * 10 * 16]

    def test_cache_stats_aggregate_across_shards(self, gpa_small, router4):
        router = router4("owner", cache_bytes=1 << 22)
        nodes = np.asarray([3, 40, 77, 110])
        router.query_many(nodes)
        router.query_many(nodes)
        stats = router.stats()
        assert stats.cache is not None
        assert stats.cache.hits == 4 and stats.cache.misses == 4
        assert stats.cache.hit_rate == 0.5

    def test_no_cache_no_cache_stats(self, gpa_small):
        router = ShardRouter([[gpa_small]])
        router.query_many([1])
        assert router.stats().cache is None

    def test_makespan_bounded_by_total(self, gpa_small, router4):
        router = router4("round_robin")
        router.query_many(_stream(gpa_small.graph.num_nodes, size=32, seed=8))
        stats = router.stats()
        assert 0.0 < stats.makespan_seconds <= stats.busy_total_seconds


# ----------------------------------------------------------------------
class TestConstruction:
    def test_distributed_runtime_as_shard_engine(self, gpa_small):
        """A distributed deployment plugs in as a replica engine, and its
        owner_map() is the affinity map."""
        cluster = DistributedGPA(gpa_small, 3)
        router = ShardRouter(
            [[cluster]] * 3, policy="owner", owner_map=cluster.owner_map()
        )
        nodes = np.asarray([0, 5, 42, 99])
        out, _ = router.query_many(nodes)
        np.testing.assert_allclose(
            out, gpa_small.query_many(nodes)[0], atol=5e-8, rtol=0
        )

    def test_bare_engine_is_single_replica_shard(self, gpa_small):
        router = ShardRouter([gpa_small, gpa_small])
        assert [len(s.replicas) for s in router.shards] == [1, 1]

    def test_replica_and_backend_objects_accepted(self, gpa_small):
        backend = as_backend(gpa_small)
        router = ShardRouter([[Replica(gpa_small, 0), backend]])
        out, _ = router.query_many([7])
        np.testing.assert_allclose(out[0], gpa_small.query(7), atol=ATOL, rtol=0)

    def test_no_shards_rejected(self):
        with pytest.raises(ShardingError):
            ShardRouter([])

    def test_empty_replica_group_rejected(self, gpa_small):
        with pytest.raises(ShardingError):
            ShardRouter([[gpa_small], []])

    def test_mismatched_num_nodes_rejected(self, gpa_small, jw_small, ring10):
        from repro.core import build_jw_index

        other = build_jw_index(ring10, num_hubs=3, tol=1e-8)
        with pytest.raises(ShardingError, match="num_nodes"):
            ShardRouter([[gpa_small], [other]])
        with pytest.raises(ShardingError, match="num_nodes"):
            Shard(0, [gpa_small, other])

    def test_unservable_replica_rejected(self):
        with pytest.raises(ServingError):
            ShardRouter([[object()]])

    def test_cache_weight_forwarded(self, gpa_small):
        weights = []

        def weight(u, vec):
            weights.append(u)
            return 1.0

        router = ShardRouter(
            [[gpa_small]], cache_bytes=1 << 22, cache_weight=weight
        )
        router.query_many([3, 5])
        assert weights == [3, 5]
