"""Tests for PPV linearity (preference-set queries)."""

import numpy as np
import pytest

from repro.core import (
    normalize_preference,
    power_iteration_ppv,
    ppv_for_preference_set,
)
from repro.errors import QueryError
from repro.metrics import l_inf


class TestNormalize:
    def test_normalises(self):
        w = normalize_preference({1: 2.0, 2: 6.0})
        assert w == {1: 0.25, 2: 0.75}

    def test_drops_zero_weights(self):
        assert 3 not in normalize_preference({1: 1.0, 3: 0.0})

    def test_errors(self):
        with pytest.raises(QueryError):
            normalize_preference({})
        with pytest.raises(QueryError):
            normalize_preference({1: -1.0})
        with pytest.raises(QueryError):
            normalize_preference({1: 0.0})


class TestLinearity:
    def test_matches_direct_preference_iteration(self, small_graph, hgpa_small):
        pref = {3: 1.0, 40: 2.0, 77: 1.0}
        combined = ppv_for_preference_set(hgpa_small.query, pref)
        direct = power_iteration_ppv(small_graph, pref, tol=1e-10)
        assert l_inf(combined, direct) < 1e-6

    def test_single_node_degenerates(self, hgpa_small):
        combined = ppv_for_preference_set(hgpa_small.query, {5: 7.0})
        np.testing.assert_allclose(combined, hgpa_small.query(5))

    def test_convexity(self, hgpa_small):
        """The preference-set PPV is the convex combination of PPVs."""
        a, b = hgpa_small.query(1), hgpa_small.query(2)
        mixed = ppv_for_preference_set(hgpa_small.query, {1: 1.0, 2: 3.0})
        np.testing.assert_allclose(mixed, 0.25 * a + 0.75 * b, atol=1e-12)

    def test_works_with_any_query_backend(self, small_graph, gpa_small):
        pref = {10: 1.0, 20: 1.0}
        from_gpa = ppv_for_preference_set(gpa_small.query, pref)
        direct = power_iteration_ppv(small_graph, pref, tol=1e-10)
        assert l_inf(from_gpa, direct) < 1e-6
