"""Property-based end-to-end invariants on random digraphs.

These are the paper's theorems checked adversarially: for *arbitrary* small
graphs (not just the friendly community stand-ins), GPA and HGPA must equal
power iteration, hubs must separate, and decomposition identities must hold.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    build_gpa_index,
    build_hgpa_index,
    partial_vectors,
    power_iteration_ppv,
    skeleton_columns,
)
from repro.core.decomposition import as_view
from repro.graph import DiGraph
from repro.metrics import l_inf

PROP_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_digraph(draw, max_nodes=24, max_edges=80):
    n = draw(st.integers(3, max_nodes))
    m = draw(st.integers(1, max_edges))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    g = DiGraph.from_arrays(n, src[keep], dst[keep])
    return g.with_dangling_policy("self_loop")


class TestExactnessProperties:
    @settings(**PROP_SETTINGS)
    @given(random_digraph(), st.integers(0, 10_000))
    def test_hgpa_exact_on_random_graphs(self, graph, qseed):
        index = build_hgpa_index(graph, tol=1e-10, seed=1, max_levels=4)
        u = int(np.random.default_rng(qseed).integers(0, graph.num_nodes))
        ref = power_iteration_ppv(graph, u, tol=1e-10)
        assert l_inf(index.query(u), ref) < 1e-6

    @settings(**PROP_SETTINGS)
    @given(random_digraph(), st.integers(2, 4))
    def test_gpa_exact_on_random_graphs(self, graph, parts):
        index = build_gpa_index(graph, min(parts, graph.num_nodes), tol=1e-10, seed=1)
        for u in (0, graph.num_nodes - 1):
            ref = power_iteration_ppv(graph, u, tol=1e-10)
            assert l_inf(index.query(u), ref) < 1e-6

    @settings(**PROP_SETTINGS)
    @given(random_digraph())
    def test_hubs_theorem_identity(self, graph):
        """Eq. 4 with an arbitrary hub set reconstructs the true PPV."""
        n = graph.num_nodes
        rng = np.random.default_rng(n)
        hubs = np.unique(rng.integers(0, n, max(1, n // 4)))
        view = as_view(graph)
        sources = np.arange(n)
        d, _ = partial_vectors(view, hubs, sources, tol=1e-11)
        s = skeleton_columns(view, hubs, tol=1e-9)
        u = int(rng.integers(0, n))
        r = d[:, u].copy()
        for j, h in enumerate(hubs.tolist()):
            weight = s[u, j] - (0.15 if u == h else 0.0)
            adjusted = d[:, h].copy()
            adjusted[h] -= 0.15
            r += (weight / 0.15) * adjusted
        ref = power_iteration_ppv(graph, u, tol=1e-11)
        assert l_inf(r, ref) < 1e-6


class TestStructuralProperties:
    @settings(**PROP_SETTINGS)
    @given(random_digraph())
    def test_hierarchy_invariants(self, graph):
        from repro.partition import build_hierarchy

        h = build_hierarchy(graph, seed=2)
        h.validate()
        # Every node is classified exactly once.
        assert h.hub_nodes().size + h.non_hub_nodes().size == graph.num_nodes
        # Chains are consistent for every node.
        for u in range(graph.num_nodes):
            chain = h.chain(u)
            assert chain[0] is h.root

    @settings(**PROP_SETTINGS)
    @given(random_digraph())
    def test_ppv_mass_conserved(self, graph):
        """With the self-loop policy the PPV is a probability vector."""
        ppv = power_iteration_ppv(graph, 0, tol=1e-10)
        assert ppv.sum() == pytest.approx(1.0, abs=1e-6)
        assert (ppv >= -1e-12).all()

    @settings(**PROP_SETTINGS)
    @given(random_digraph(), st.integers(1, 5))
    def test_distributed_equals_centralized(self, graph, machines):
        from repro.distributed import DistributedHGPA

        index = build_hgpa_index(graph, tol=1e-9, seed=3, max_levels=3)
        dep = DistributedHGPA(index, machines)
        u = graph.num_nodes // 2
        vec, report = dep.query(u)
        np.testing.assert_allclose(vec, index.query(u), atol=1e-9)
        assert len(report.per_machine_bytes) == machines
