"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_digraph,
    erdos_renyi_digraph,
    hierarchical_community_digraph,
    meetup_like_digraph,
    preferential_attachment_digraph,
    ring_digraph,
    star_digraph,
)


class TestHierarchicalCommunity:
    def test_deterministic(self):
        a = hierarchical_community_digraph(500, seed=4)
        b = hierarchical_community_digraph(500, seed=4)
        assert a == b

    def test_seed_changes_graph(self):
        a = hierarchical_community_digraph(500, seed=4)
        b = hierarchical_community_digraph(500, seed=5)
        assert a != b

    def test_size_and_density(self):
        g = hierarchical_community_digraph(1000, avg_out_degree=4.0, seed=1)
        assert g.num_nodes == 1000
        assert 2.0 <= g.num_edges / 1000 <= 6.0

    def test_no_isolated_nodes(self):
        g = hierarchical_community_digraph(600, seed=2)
        assert (g.out_degrees > 0).all()

    def test_no_self_loops(self):
        g = hierarchical_community_digraph(300, seed=7)
        src, dst = g.edge_arrays()
        assert (src != dst).all()

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            hierarchical_community_digraph(4, depth=5)

    def test_separable_structure(self):
        """Community structure must yield balanced cuts far below random."""
        from repro.partition import multilevel_bisect, ugraph_from_digraph

        g = hierarchical_community_digraph(600, avg_out_degree=4, seed=11)
        ug = ugraph_from_digraph(g)
        labels = multilevel_bisect(ug, seed=0)
        cut = ug.cut_weight(labels)
        assert cut < 0.25 * g.num_edges  # random graphs cut ≈ 50%

    def test_degree_skew(self):
        g = hierarchical_community_digraph(1000, avg_out_degree=5, seed=3)
        in_deg = np.asarray(g.in_csr().sum(axis=1)).ravel()
        assert in_deg.max() >= 5 * in_deg.mean()


class TestMeetupLike:
    def test_density_and_determinism(self):
        a = meetup_like_digraph(300, 400, seed=6)
        b = meetup_like_digraph(300, 400, seed=6)
        assert a == b
        assert a.num_edges / a.num_nodes > 5  # clique-heavy

    def test_more_events_more_edges(self):
        small = meetup_like_digraph(300, 200, seed=6)
        large = meetup_like_digraph(300, 800, seed=6)
        assert large.num_edges > small.num_edges

    def test_no_isolated(self):
        g = meetup_like_digraph(200, 100, seed=1)
        assert (g.out_degrees > 0).all()

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            meetup_like_digraph(4, 10, depth=4)


class TestClassicGenerators:
    def test_erdos_renyi(self):
        g = erdos_renyi_digraph(100, 500, seed=0)
        assert g.num_nodes == 100
        assert 350 <= g.num_edges <= 500  # dedup + self-loop removal

    def test_preferential_attachment(self):
        g = preferential_attachment_digraph(200, out_per_node=3, seed=0)
        assert g.num_nodes == 200
        in_deg = np.asarray(g.in_csr().sum(axis=1)).ravel()
        assert in_deg.max() > 10  # heavy-tailed

    def test_preferential_attachment_needs_two(self):
        with pytest.raises(GraphError):
            preferential_attachment_digraph(1)

    def test_ring(self):
        g = ring_digraph(5)
        assert g.num_edges == 5
        assert g.has_edge(4, 0)

    def test_star(self):
        g = star_digraph(6)
        assert g.out_degree(0) == 5
        assert all(g.has_edge(i, 0) for i in range(1, 6))

    def test_complete(self):
        g = complete_digraph(4)
        assert g.num_edges == 12
        assert not g.has_edge(2, 2)
