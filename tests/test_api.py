"""Public API surface and exception hierarchy tests."""

import pytest

import repro
from repro.errors import (
    ClusterError,
    ConvergenceError,
    GraphError,
    IndexBuildError,
    PartitionError,
    QueryError,
    ReproError,
    SerializationError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            PartitionError,
            IndexBuildError,
            QueryError,
            ConvergenceError,
            ClusterError,
            SerializationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_core_exports(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name, None) is not None, name

    def test_partition_exports(self):
        from repro import partition

        for name in partition.__all__:
            assert getattr(partition, name, None) is not None, name

    def test_graph_exports(self):
        from repro import graph

        for name in graph.__all__:
            assert getattr(graph, name, None) is not None, name

    def test_distributed_exports(self):
        from repro import distributed

        for name in distributed.__all__:
            assert getattr(distributed, name, None) is not None, name

    def test_engines_and_approx_exports(self):
        from repro import approx, engines

        for mod in (engines, approx):
            for name in mod.__all__:
                assert getattr(mod, name, None) is not None, name

    def test_bench_harness_importable(self):
        from repro.bench import ExperimentTable, results_dir

        table = ExperimentTable("t", "title", ["a", "b"])
        table.add(1, 2.5)
        rendered = table.render()
        assert "t: title" in rendered and "2.500" in rendered
        assert results_dir().is_dir()
