"""Unit and property tests for hub-node selection (vertex covers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition import (
    bipartite_min_vertex_cover,
    cover_cut_edges,
    greedy_vertex_cover,
    hopcroft_karp,
    konig_cover,
    matching_vertex_cover_2approx,
)


def covers_all(pairs: np.ndarray, cover: set[int]) -> bool:
    return all(a in cover or b in cover for a, b in pairs.tolist())


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adj = [[0], [1], [2]]
        ml, mr = hopcroft_karp(adj, 3, 3)
        assert (ml >= 0).all() and (mr >= 0).all()

    def test_matching_size_known(self):
        # K_{2,2} plus isolated left vertex: max matching 2.
        adj = [[0, 1], [0, 1], []]
        ml, _ = hopcroft_karp(adj, 3, 2)
        assert int((ml >= 0).sum()) == 2

    def test_path_graph(self):
        # L0-R0, R0-L1, L1-R1 path: max matching 2.
        adj = [[0], [0, 1]]
        ml, mr = hopcroft_karp(adj, 2, 2)
        assert int((ml >= 0).sum()) == 2

    def test_matching_consistency(self):
        rng = np.random.default_rng(0)
        adj = [sorted(set(rng.integers(0, 12, 3).tolist())) for _ in range(10)]
        ml, mr = hopcroft_karp(adj, 10, 12)
        for u, v in enumerate(ml.tolist()):
            if v >= 0:
                assert mr[v] == u
                assert v in adj[u]


class TestKonig:
    def test_cover_size_equals_matching(self):
        adj = [[0, 1], [0], [1, 2]]
        ml, mr = hopcroft_karp(adj, 3, 3)
        cl, cr = konig_cover(adj, ml, mr)
        assert int(cl.sum()) + int(cr.sum()) == int((ml >= 0).sum())

    def test_cover_covers_all_edges(self):
        rng = np.random.default_rng(3)
        adj = [sorted(set(rng.integers(0, 8, 4).tolist())) for _ in range(8)]
        ml, mr = hopcroft_karp(adj, 8, 8)
        cl, cr = konig_cover(adj, ml, mr)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert cl[u] or cr[v]


class TestBipartiteCover:
    def test_star_covered_by_center(self):
        pairs = np.array([[0, 10], [0, 11], [0, 12]])
        left, right = bipartite_min_vertex_cover(pairs)
        assert left.tolist() == [0] and right.size == 0

    def test_empty(self):
        left, right = bipartite_min_vertex_cover(np.empty((0, 2)))
        assert left.size == 0 and right.size == 0

    def test_bad_shape(self):
        with pytest.raises(PartitionError):
            bipartite_min_vertex_cover(np.array([[1, 2, 3]]))

    def test_minimality_on_cycle(self):
        # C4 as bipartite: needs exactly 2 cover nodes.
        pairs = np.array([[0, 10], [0, 11], [1, 10], [1, 11]])
        left, right = bipartite_min_vertex_cover(pairs)
        assert left.size + right.size == 2
        assert covers_all(pairs, set(left.tolist()) | set(right.tolist()))


class TestHeuristicCovers:
    def test_greedy_covers(self):
        pairs = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        cover = greedy_vertex_cover(pairs)
        assert covers_all(pairs, set(cover.tolist()))

    def test_greedy_star_optimal(self):
        pairs = np.array([[0, i] for i in range(1, 6)])
        assert greedy_vertex_cover(pairs).tolist() == [0]

    def test_2approx_covers_and_bound(self):
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        cover = matching_vertex_cover_2approx(pairs, seed=1)
        assert covers_all(pairs, set(cover.tolist()))
        assert cover.size <= 2 * 3  # ≤ 2·OPT, OPT = 3 here

    def test_empty_inputs(self):
        assert greedy_vertex_cover(np.empty((0, 2))).size == 0
        assert matching_vertex_cover_2approx(np.empty((0, 2))).size == 0


class TestCoverCutEdges:
    def test_no_cut(self):
        src = np.array([0, 1])
        dst = np.array([1, 0])
        labels = np.zeros(2, dtype=np.int64)
        assert cover_cut_edges(src, dst, labels).size == 0

    def test_exact_two_way(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([2, 3, 0, 1])
        labels = np.array([0, 0, 1, 1])
        hubs = cover_cut_edges(src, dst, labels, method="exact")
        hub_set = set(hubs.tolist())
        for s, d in zip(src, dst):
            assert s in hub_set or d in hub_set

    def test_exact_rejects_multiway(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        labels = np.array([0, 1, 2])
        with pytest.raises(PartitionError):
            cover_cut_edges(src, dst, labels, method="exact")

    def test_auto_multiway_falls_back(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        labels = np.array([0, 1, 2])
        hubs = cover_cut_edges(src, dst, labels, method="auto")
        assert hubs.size > 0

    def test_unknown_method(self):
        with pytest.raises(PartitionError):
            cover_cut_edges(np.array([0]), np.array([1]), np.array([0, 1]), method="x")

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_cover_separates(self, data):
        """For random graphs + random 2-labelings, the exact cover hits
        every crossing edge and is no larger than the greedy one."""
        n = data.draw(st.integers(4, 25))
        m = data.draw(st.integers(0, 60))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        labels = rng.integers(0, 2, n)
        exact = cover_cut_edges(src, dst, labels, method="exact")
        greedy = cover_cut_edges(src, dst, labels, method="greedy")
        cover_set = set(exact.tolist())
        crossing = labels[src] != labels[dst]
        for s, d in zip(src[crossing].tolist(), dst[crossing].tolist()):
            assert s in cover_set or d in cover_set
        assert exact.size <= greedy.size + 1e-9  # Kőnig is minimum
