"""The execution seam: shared arenas, process workers, exactness, failover.

The contracts under test are the seam's non-negotiables: a
:class:`ProcessPoolBackend` answer is *bitwise* equal to the serial one
(same buffers, same scipy kernels, same bits) for both distributed
runtimes and the shard router; arena descriptors pickle into zero-copy
read-only views; a dead worker surfaces as :class:`WorkerDied` and the
sharding layer fails over via ``mark_down``; and closing a backend leaves
no child process and no ``/dev/shm`` segment behind (also asserted
suite-wide by the ``no_exec_leaks`` fixture in ``conftest.py``).
"""

import glob
import multiprocessing as mp
import pickle
import time

import numpy as np
import pytest

from repro.core.updates import EdgeUpdate
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.errors import ExecutionError, ShardingError, WorkerDied
from repro.exec import (
    ProcessPoolBackend,
    SerialBackend,
    SharedStackedOps,
    ShmArena,
)
from repro.sharding.router import ShardRouter


def _shm_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-shm-*")


def _query_nodes(num_nodes: int, size: int = 24, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, num_nodes, size=size)


def assert_csr_bitwise(a, b) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


class _SleepyState:
    """A worker state guaranteed to be mid-task when its worker is
    killed — makes the died-mid-batch path deterministic to test."""

    def nap(self, seconds: float) -> str:
        time.sleep(seconds)
        return "done"


def _sleepy_builder() -> _SleepyState:
    return _SleepyState()


@pytest.fixture
def pool():
    backend = ProcessPoolBackend(2)
    yield backend
    backend.close()


class TestArena:
    def test_descriptor_pickle_roundtrip_preserves_readonly_views(self):
        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
            "c": np.arange(6, dtype=np.float64).reshape(2, 3),
        }
        with ShmArena(arrays) as arena:
            descriptor = pickle.loads(pickle.dumps(arena.descriptor))
            view = descriptor.attach()
            for name, arr in arrays.items():
                got = view.arrays[name]
                assert np.array_equal(got, arr)
                assert got.dtype == arr.dtype and got.shape == arr.shape
                # zero-copy view of the segment, not of the originals
                assert not np.shares_memory(got, arr)
                assert not got.flags.writeable
                with pytest.raises(ValueError):
                    got[...] = 0
        assert not _shm_segments()

    def test_shared_stacked_ops_roundtrip(self, gpa_small):
        part_csc, skel_csr, nnz_per_hub = gpa_small._ops()
        ops = (gpa_small.hubs, part_csc, skel_csr, nnz_per_hub)
        arena, shared = SharedStackedOps.publish(ops, gpa_small.graph.num_nodes)
        with arena:
            back = pickle.loads(pickle.dumps(shared))
            owned, got_csc, got_csr, got_nnz = back.ops
            assert np.array_equal(owned, gpa_small.hubs)
            assert_csr_bitwise(got_csc, part_csc)
            assert_csr_bitwise(got_csr, skel_csr)
            assert np.array_equal(got_nnz, nnz_per_hub)
            assert got_csc.shape == part_csc.shape
            assert not got_csc.data.flags.writeable
        assert not _shm_segments()

    def test_close_is_idempotent(self):
        arena = ShmArena({"x": np.ones(3)})
        arena.close()
        arena.close()
        assert not _shm_segments()


class TestBackendRegistry:
    def test_serial_duplicate_key_rejected(self):
        backend = SerialBackend()
        backend.register("k", lambda: None)
        with pytest.raises(ExecutionError, match="duplicate"):
            backend.register("k", lambda: None)

    def test_serial_missing_key_rejected(self):
        with pytest.raises(ExecutionError, match="no state"):
            SerialBackend().submit("missing", "dense")

    def test_process_pool_needs_a_worker(self):
        with pytest.raises(ExecutionError, match="at least one"):
            ProcessPoolBackend(0)

    def test_context_manager_cleans_up(self):
        with ProcessPoolBackend(2) as backend:
            backend.create_arena({"x": np.arange(4, dtype=np.float64)})
            assert _shm_segments()
        assert not _shm_segments()
        assert not mp.active_children()


class TestRuntimeBitwise:
    """Process-pool runtimes equal serial ones bit for bit."""

    @pytest.mark.parametrize("family", ["gpa", "hgpa"])
    def test_distributed_runtime_matches_serial(self, request, family):
        index = request.getfixturevalue(f"{family}_small")
        runtime_cls = DistributedGPA if family == "gpa" else DistributedHGPA
        nodes = _query_nodes(index.graph.num_nodes)
        serial = runtime_cls(index, 4)
        d0, rep0 = serial.query_many(nodes)
        s0, _ = serial.query_many_sparse(nodes)
        with ProcessPoolBackend(2) as pool:
            dist = runtime_cls(index, 4, backend=pool)
            d1, rep1 = dist.query_many(nodes)
            s1, _ = dist.query_many_sparse(nodes)
            assert np.array_equal(d0, d1)
            assert_csr_bitwise(s0, s1)
            for a, b in zip(rep0, rep1):
                assert a.per_machine_entries == b.per_machine_entries
                assert a.communication_bytes == b.communication_bytes

    def test_router_matches_serial(self, gpa_small):
        nodes = _query_nodes(gpa_small.graph.num_nodes, size=30, seed=1)
        serial = ShardRouter([[gpa_small, gpa_small]] * 2)
        d0, i0 = serial.query_many(nodes)
        s0, _ = serial.query_many_sparse(nodes)
        ids0, scores0, _ = serial.query_many_topk(nodes, 5, sparse=True)
        with ProcessPoolBackend(2) as pool:
            router = ShardRouter([[gpa_small, gpa_small]] * 2, backend=pool)
            d1, i1 = router.query_many(nodes)
            s1, _ = router.query_many_sparse(nodes)
            ids1, scores1, _ = router.query_many_topk(nodes, 5, sparse=True)
            assert np.array_equal(d0, d1)
            assert_csr_bitwise(s0, s1)
            assert np.array_equal(ids0, ids1)
            assert np.array_equal(scores0, scores1)
            assert i0 == i1  # same replica picks, same epochs
            assert serial.meter.total_bytes == router.meter.total_bytes

    def test_router_update_then_query_matches_serial(self, gpa_small):
        nodes = _query_nodes(gpa_small.graph.num_nodes, size=16, seed=2)
        update = EdgeUpdate.insert(0, gpa_small.graph.num_nodes - 1)
        serial = ShardRouter([[gpa_small]])
        serial.apply_update(update)
        d0, _ = serial.query_many(nodes)
        with ProcessPoolBackend(2) as pool:
            router = ShardRouter([[gpa_small]], backend=pool)
            router.query_many(nodes)  # publish the epoch-0 engine first
            receipt = router.apply_update(update)
            d1, infos = router.query_many(nodes)
            assert np.array_equal(d0, d1)
            if receipt.changed:
                assert all(info.epoch == 1 for info in infos)


class TestFailover:
    def _router(self, engine, pool):
        return ShardRouter([[engine, engine]], backend=pool)

    def test_worker_death_mid_batch_retries_in_place(self, gpa_small, pool):
        # A transient worker death is retried once on the same replica:
        # the execution key re-registers round-robin on the pool's next
        # (healthy) worker, so the victim replica recovers in place
        # instead of being marked down.
        nodes = _query_nodes(gpa_small.graph.num_nodes, size=20, seed=3)
        d0, _ = ShardRouter([[gpa_small, gpa_small]]).query_many(nodes)
        router = self._router(gpa_small, pool)
        shard = router.shards[0]
        plan = shard.query_many_submit(nodes)
        victim = plan.replica
        worker = pool._assignment[victim._exec_key]
        worker.proc.kill()
        worker.proc.join()
        out, infos = shard.query_many_finish(plan)
        assert victim.is_up(shard.clock.now())
        assert all(info.replica == victim.replica_id for info in infos)
        assert router.res_stats.worker_retries == 1
        assert np.array_equal(out, d0)

    def test_worker_death_on_submit_fails_over(self, gpa_small, pool):
        nodes = _query_nodes(gpa_small.graph.num_nodes, size=12, seed=4)
        router = self._router(gpa_small, pool)
        shard = router.shards[0]
        shard.query_many(nodes)  # register both replicas' worker states
        shard.query_many(nodes)
        victim = shard.replicas[0]
        worker = pool._assignment[victim._exec_key]
        worker.proc.kill()
        worker.proc.join()
        out, infos = shard.query_many(nodes)
        assert not victim.is_up(shard.clock.now())
        assert all(info.replica == 1 for info in infos)

    def test_every_replica_down_raises(self, gpa_small, pool):
        nodes = _query_nodes(gpa_small.graph.num_nodes, size=8, seed=5)
        router = self._router(gpa_small, pool)
        router.query_many(nodes)
        for worker in pool._workers:
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()
        with pytest.raises(ShardingError, match="marked down"):
            router.shards[0].query_many(nodes)

    def test_dead_worker_future_raises_worker_died(self, pool):
        pool.register("sleeper", _sleepy_builder)
        future = pool.submit("sleeper", "nap", 60.0)
        worker = pool._assignment["sleeper"]
        worker.proc.kill()
        worker.proc.join()
        with pytest.raises(WorkerDied):
            future.result()
