"""Unit and property tests for the partition hierarchy (Section 4.2)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import (
    DiGraph,
    VirtualSubgraph,
    hierarchical_community_digraph,
    ring_digraph,
)
from repro.partition import build_hierarchy, flat_partition


@pytest.fixture(scope="module")
def hierarchy():
    g = hierarchical_community_digraph(300, avg_out_degree=3, seed=8)
    g = g.with_dangling_policy("self_loop")
    return build_hierarchy(g, fanout=2, seed=0)


class TestStructure:
    def test_validate(self, hierarchy):
        hierarchy.validate()

    def test_root_holds_everything(self, hierarchy):
        assert hierarchy.root.num_nodes == hierarchy.graph.num_nodes
        assert hierarchy.root.level == 0

    def test_node_classification_is_total(self, hierarchy):
        hubs = set(hierarchy.hub_nodes().tolist())
        non = set(hierarchy.non_hub_nodes().tolist())
        assert hubs.isdisjoint(non)
        assert len(hubs) + len(non) == hierarchy.graph.num_nodes

    def test_hub_counts_match(self, hierarchy):
        assert sum(hierarchy.hub_counts_per_level()) == hierarchy.hub_nodes().size

    def test_leaves_have_no_internal_edges(self, hierarchy):
        """The paper's stopping rule: recurse until leaves are edge-free
        (or unsplittable)."""
        for leaf in hierarchy.leaves():
            view = VirtualSubgraph(hierarchy.graph, leaf.nodes)
            internal = view.internal_edges_local()
            non_loop = (internal[0] != internal[1]).sum()
            # Self loops (from the dangling policy) may remain.
            assert non_loop == 0 or leaf.num_nodes <= 2

    def test_chain_walks_root_to_deepest(self, hierarchy):
        for u in [0, 57, 123, 299]:
            chain = hierarchy.chain(u)
            assert chain[0] is hierarchy.root
            for parent, child in zip(chain, chain[1:]):
                assert child.parent == parent.node_id
            deepest = chain[-1]
            if hierarchy.is_hub(u):
                assert u in deepest.hubs
            else:
                assert deepest.is_leaf

    def test_view_cached(self, hierarchy):
        v1 = hierarchy.view(0)
        assert hierarchy.view(0) is v1


class TestSeparationInvariant:
    def test_hubs_separate_children(self, hierarchy):
        """Removing H(G) must disconnect G's children — every internal
        subgraph, every level (the exactness precondition)."""
        src, dst = hierarchy.graph.edge_arrays()
        for sg in hierarchy.internal_subgraphs():
            owner = np.full(hierarchy.graph.num_nodes, -1, dtype=np.int64)
            for cid in sg.children:
                owner[hierarchy.subgraphs[cid].nodes] = cid
            s_own, d_own = owner[src], owner[dst]
            crossing = (s_own >= 0) & (d_own >= 0) & (s_own != d_own)
            assert not crossing.any(), f"subgraph {sg.node_id} leaks edges"


class TestParameters:
    def test_max_levels_cap(self, hierarchy):
        g = hierarchy.graph
        capped = build_hierarchy(g, max_levels=2, seed=0)
        assert capped.depth <= 2
        capped.validate()

    def test_fanout_four(self):
        g = hierarchical_community_digraph(300, avg_out_degree=3, seed=8)
        h = build_hierarchy(g, fanout=4, max_levels=2, seed=0)
        h.validate()
        assert len(h.root.children) <= 4
        assert h.depth <= 2

    def test_bad_fanout(self, small_graph):
        with pytest.raises(PartitionError):
            build_hierarchy(small_graph, fanout=1)

    def test_deterministic(self):
        g = hierarchical_community_digraph(200, avg_out_degree=3, seed=1)
        a = build_hierarchy(g, seed=3)
        b = build_hierarchy(g, seed=3)
        assert a.hub_counts_per_level() == b.hub_counts_per_level()
        np.testing.assert_array_equal(a.hub_level, b.hub_level)

    def test_ring(self):
        # Edge-free leaves on a 16-cycle need ≥ 8 hubs (alternate nodes);
        # the recursive construction should land near that optimum.
        h = build_hierarchy(ring_digraph(16), seed=0)
        h.validate()
        assert h.hub_nodes().size <= 10

    def test_single_node(self):
        h = build_hierarchy(DiGraph.from_edges(1, []), seed=0)
        assert h.depth == 0 and h.root.is_leaf

    def test_edgeless_graph(self):
        h = build_hierarchy(DiGraph.from_edges(5, []), seed=0)
        assert h.root.is_leaf
        assert h.hub_nodes().size == 0


class TestFlatPartition:
    def test_validate(self, medium_graph):
        fp = flat_partition(medium_graph, 4, seed=0)
        fp.validate()
        assert fp.num_parts == 4

    def test_hub_membership_queries(self, medium_graph):
        fp = flat_partition(medium_graph, 3, seed=1)
        for h in fp.hubs[:5].tolist():
            assert fp.is_hub(h)
            with pytest.raises(PartitionError):
                fp.part_of(h)
        non_hub = fp.part_nodes[0][0]
        assert not fp.is_hub(int(non_hub))
        assert fp.part_of(int(non_hub)) == 0

    def test_single_part_no_hubs(self, small_graph):
        fp = flat_partition(small_graph, 1)
        assert fp.num_hubs == 0
        assert fp.part_nodes[0].size == small_graph.num_nodes

    def test_invalid_parts(self, small_graph):
        with pytest.raises(PartitionError):
            flat_partition(small_graph, 0)
