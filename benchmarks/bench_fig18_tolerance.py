"""Figure 18: effect of tolerance ε on HGPA (Web).

Paper: all four measures — query runtime, index space, offline time and
communication — increase as ε shrinks from 1e-2 to 1e-6, because smaller
tolerances generate more small values.  Expected shape here: monotone (up
to noise) growth in all four columns as ε decreases.
"""

import statistics

from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA

DATASET = "web"
TOLERANCES = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6)
MACHINES = 6


def test_fig18_tolerance(benchmark):
    queries = bench_queries(DATASET, 8)
    table = ExperimentTable(
        "Fig 18",
        f"Effect of tolerance ε on {DATASET} (HGPA, {MACHINES} machines)",
        ["tolerance", "runtime (ms)", "space (MB)", "offline (s)", "network (KB)"],
    )
    sizes, comms = [], []
    for tol in TOLERANCES:
        index = hgpa_index(DATASET, tol=tol)
        dep = DistributedHGPA(index, MACHINES)
        runtimes, nets = [], []
        for q in queries.tolist():
            _, rep = dep.query(int(q))
            runtimes.append(rep.runtime_seconds * 1000)
            nets.append(rep.communication_kb)
        sizes.append(index.total_bytes() / 1e6)
        comms.append(statistics.median(nets))
        table.add(
            f"{tol:.0e}",
            statistics.median(runtimes),
            round(sizes[-1], 2),
            round(index.offline_seconds(), 3),
            comms[-1],
        )
    table.note("paper shape: every measure grows as ε decreases")
    table.emit()
    assert sizes[-1] > sizes[0], "smaller ε must store more"
    assert comms[-1] > comms[0], "smaller ε must ship more"

    index = hgpa_index(DATASET, tol=1e-4)
    q0 = int(queries[0])
    benchmark(lambda: index.query(q0))
