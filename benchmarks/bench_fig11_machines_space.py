"""Figure 11: HGPA maximum per-machine space vs number of machines.

Paper: the max space per machine shrinks as machines are added — no
redundancy is shared between machines.  Expected shape here: monotone
(within round-robin jitter) decrease, total constant.
"""

from repro.bench import ExperimentTable, hgpa_index
from repro.distributed import DistributedHGPA

DATASETS = ("web", "youtube", "pld")
MACHINES = (2, 4, 6, 8, 10)


def test_fig11_machines_space(benchmark):
    table = ExperimentTable(
        "Fig 11",
        "HGPA max per-machine space vs number of machines",
        ["dataset"] + [f"{m} mach (MB)" for m in MACHINES] + ["total (MB)"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        row = [name]
        sizes = []
        for m in MACHINES:
            dep = DistributedHGPA(index, m)
            sizes.append(dep.max_machine_bytes() / 1e6)
            row.append(sizes[-1])
            # Nothing is duplicated across machines.
            assert dep.total_stored_bytes() == index.total_bytes()
        row.append(index.total_bytes() / 1e6)
        table.add(*row)
        assert sizes[-1] < sizes[0], f"{name}: space must shrink with machines"
    table.note("paper shape: max space/machine decreases; no shared redundancy")
    table.emit()

    index = hgpa_index("web")
    benchmark(lambda: DistributedHGPA(index, 6).max_machine_bytes())
