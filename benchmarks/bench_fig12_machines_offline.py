"""Figure 12: HGPA pre-computation time vs number of machines.

Paper: offline time is nearly linear in 1/machines — each machine only
pre-computes the vectors of nodes assigned to it, with no communication.
Expected shape here: makespan at 10 machines ≈ (2/10)× the 2-machine one.
"""

from repro.bench import ExperimentTable, hgpa_index
from repro.distributed import DistributedHGPA, precompute_report

DATASETS = ("web", "youtube", "pld")
MACHINES = (2, 4, 6, 8, 10)


def test_fig12_machines_offline(benchmark):
    table = ExperimentTable(
        "Fig 12",
        "HGPA pre-computation makespan vs number of machines",
        ["dataset"] + [f"{m} mach (s)" for m in MACHINES] + ["efficiency@10"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        row = [name]
        makespans = []
        for m in MACHINES:
            report = precompute_report(DistributedHGPA(index, m))
            makespans.append(report.makespan_seconds)
            row.append(report.makespan_seconds)
        eff = precompute_report(DistributedHGPA(index, 10)).parallel_efficiency
        row.append(round(eff, 2))
        table.add(*row)
        assert makespans[-1] < makespans[0] * 0.45, (
            f"{name}: offline time must scale down near-linearly"
        )
    table.note("paper shape: offline time ≈ total/machines (no communication)")
    table.emit()

    index = hgpa_index("web")
    benchmark(lambda: precompute_report(DistributedHGPA(index, 6)))
