"""Figure 15: HGPA pre-computation space vs number of partitioning levels.

Paper: space drops sharply as levels increase (leaf subgraphs shrink
exponentially, so leaf-level PPVs dominate less), then flattens once leaves
are near edge-free.  Expected shape here: strictly smaller storage from the
shallowest to the deepest hierarchy.
"""

from repro.bench import ExperimentTable, hgpa_index

SWEEPS = {
    "email": (1, 2, 3, 4, 5),
    "web": (2, 4, 6, 8),
    "youtube": (3, 5, 7, 9),
}


def test_fig15_levels_space(benchmark):
    table = ExperimentTable(
        "Fig 15",
        "HGPA index space (MB) vs number of partitioning levels",
        ["dataset"] + ["level " + str(i) for i in range(1, 6)],
    )
    for name, levels in SWEEPS.items():
        row = [name]
        sizes = []
        for lv in levels:
            index = hgpa_index(name, max_levels=lv)
            sizes.append(index.total_bytes() / 1e6)
            row.append(round(sizes[-1], 2))
        while len(row) < 6:
            row.append("-")
        table.add(*row)
        assert sizes[-1] < sizes[0], (
            f"{name}: deeper hierarchies must need less space "
            f"({sizes[0]:.2f} → {sizes[-1]:.2f} MB)"
        )
    table.note("paper shape: space drops sharply with levels, then flattens")
    table.emit()

    benchmark(lambda: hgpa_index("email", max_levels=5).total_bytes())
