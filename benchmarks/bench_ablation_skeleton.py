"""Ablation (Section 5.2): skeleton computation — the paper's per-hub
iteration (Eq. 8) vs the original dynamic program (Eq. 10).

The paper's point: Eq. 10 must iterate *every* node's skeleton vector at
once (O(|V|·|H|) working set, suggested disk-based in [25]) while Eq. 8
solves one hub column in O(|V|) memory and parallelises embarrassingly.
Expected shape: identical values; Eq. 8 per-column working set |V| floats
vs |V|·|H| for Eq. 10; batched Eq. 8 fastest in wall time.
"""

import time

import numpy as np

from repro import datasets
from repro.bench import ExperimentTable
from repro.core import skeleton_columns, skeleton_single_hub, skeleton_vectors_dp
from repro.core.decomposition import as_view

DATASET = "email"
NUM_HUBS = 24
TOL = 1e-6


def test_ablation_skeleton(benchmark):
    graph = datasets.load(DATASET)
    view = as_view(graph)
    rng = np.random.default_rng(0)
    hubs = np.unique(rng.integers(0, graph.num_nodes, NUM_HUBS))
    n = graph.num_nodes

    t0 = time.perf_counter()
    batched = skeleton_columns(view, hubs, tol=TOL)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    per_hub = np.column_stack(
        [skeleton_single_hub(view, int(h), tol=TOL) for h in hubs]
    )
    t_per_hub = time.perf_counter() - t0

    t0 = time.perf_counter()
    original = skeleton_vectors_dp(view, hubs, tol=TOL)
    t_original = time.perf_counter() - t0

    # All three stop on tolerance-based criteria, so they agree to the
    # tolerance's order, not to machine precision.
    np.testing.assert_allclose(per_hub, batched, atol=20 * TOL)
    np.testing.assert_allclose(original, batched, atol=20 * TOL)

    table = ExperimentTable(
        "Ablation skeleton",
        f"Skeleton computation on {DATASET} ({hubs.size} hubs)",
        ["method", "wall (s)", "working set (floats)"],
    )
    table.add("Eq. 8 batched", round(t_batched, 4), n * hubs.size)
    table.add("Eq. 8 per-hub (paper's distributed form)", round(t_per_hub, 4), n)
    table.add("Eq. 10 original DP", round(t_original, 4), 2 * n * hubs.size)
    table.note("identical results (Theorem 6); Eq. 8 per-hub runs in O(|V|) "
               "memory and needs no cross-machine dependency")
    table.emit()

    benchmark(lambda: skeleton_single_hub(view, int(hubs[0]), tol=TOL))
