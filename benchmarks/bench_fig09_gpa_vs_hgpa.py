"""Figure 9: GPA vs HGPA on Web — runtime, space, offline time, network.

Paper: at 6 machines HGPA beats GPA on every axis — slightly faster
(better load balance), smaller max space, less offline time, and less
network traffic.  Expected shape here: HGPA ≤ GPA on all four columns.
"""

import statistics

from repro.bench import ExperimentTable, bench_queries, gpa_index, hgpa_index
from repro.distributed import DistributedGPA, DistributedHGPA, precompute_report

DATASET = "web"
MACHINES = 6


def _measure(deployment, queries):
    runtimes, comms = [], []
    for q in queries.tolist():
        _, report = deployment.query(int(q))
        runtimes.append(report.runtime_seconds * 1000)
        comms.append(report.communication_kb)
    pre = precompute_report(deployment)
    return {
        "runtime_ms": statistics.median(runtimes),
        "space_mb": deployment.max_machine_bytes() / 1e6,
        "offline_s": pre.makespan_seconds,
        "network_kb": statistics.median(comms),
    }


def test_fig09_gpa_vs_hgpa(benchmark):
    queries = bench_queries(DATASET, 12)
    hgpa = DistributedHGPA(hgpa_index(DATASET), MACHINES)
    gpa = DistributedGPA(gpa_index(DATASET, MACHINES), MACHINES)
    rows = {"HGPA": _measure(hgpa, queries), "GPA": _measure(gpa, queries)}

    table = ExperimentTable(
        "Fig 09",
        f"GPA vs HGPA on {DATASET} ({MACHINES} machines)",
        ["algorithm", "runtime (ms)", "max space (MB)", "offline (s)", "network (KB)"],
    )
    for name, r in rows.items():
        table.add(name, r["runtime_ms"], r["space_mb"], r["offline_s"], r["network_kb"])
    table.note("paper shape: HGPA ≤ GPA on runtime, space and offline time")
    table.emit()

    assert rows["HGPA"]["space_mb"] <= rows["GPA"]["space_mb"] * 1.1
    assert rows["HGPA"]["offline_s"] <= rows["GPA"]["offline_s"] * 1.2

    q0 = int(queries[0])
    benchmark(lambda: hgpa.query(q0))
