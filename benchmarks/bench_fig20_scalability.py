"""Figure 20: HGPA scalability with graph size (Meetup M1–M5, 10 machines).

Paper: query runtime, per-machine space and offline time all grow roughly
linearly with the graph size.  Expected shape here: monotone growth of all
three measures from M1 to M5.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA, precompute_report

GRAPHS = [f"meetup_m{i}" for i in range(1, 6)]
MACHINES = 10


def test_fig20_scalability(benchmark):
    table = ExperimentTable(
        "Fig 20",
        f"HGPA scalability on Meetup stand-ins ({MACHINES} machines)",
        ["graph", "nodes", "edges", "runtime (ms)", "space (MB)", "offline (s)"],
    )
    runtimes, spaces, offlines = [], [], []
    for name in GRAPHS:
        graph = datasets.load(name)
        index = hgpa_index(name)
        dep = DistributedHGPA(index, MACHINES)
        queries = bench_queries(name, 8)
        vals = []
        for q in queries.tolist():
            _, rep = dep.query(int(q))
            vals.append(rep.runtime_seconds * 1000)
        pre = precompute_report(dep)
        runtimes.append(statistics.median(vals))
        spaces.append(dep.max_machine_bytes() / 1e6)
        offlines.append(pre.makespan_seconds)
        table.add(
            name, graph.num_nodes, graph.num_edges,
            runtimes[-1], round(spaces[-1], 2), round(offlines[-1], 3),
        )
    table.note("paper shape: runtime/space/offline grow ~linearly with size")
    table.emit()
    assert spaces[-1] > spaces[0], "space must grow with graph size"
    assert offlines[-1] > offlines[0], "offline time must grow with graph size"

    dep = DistributedHGPA(hgpa_index("meetup_m1"), MACHINES)
    q0 = int(bench_queries("meetup_m1", 1)[0])
    benchmark(lambda: dep.query(q0))
