"""Figure 26: exact vs approximate — top-100 Precision, RAG, Kendall's τ.

Paper: HGPA scores ~1.0 on every metric; HGPA_ad nearly full score; FastPPV
misses ≈30 % of the top-100 nodes and mis-orders ≈10 % of pairs.  Expected
shape here: HGPA = 1.0, HGPA_ad ≥ FastPPV on all three metrics.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, fastppv_index, hgpa_index
from repro.core import power_iteration_ppv
from repro.metrics import kendall_tau_at_k, precision_at_k, rag_at_k

DATASETS = ("email", "web")
TOL = 1e-4
K = 100
FAST_BUDGET = 10  # tight budget: the approximation regime of the figure


def _hub_counts(name: str) -> tuple[int, int]:
    n = datasets.load(name).num_nodes
    return max(8, n // 100), max(32, n // 12)


def test_fig26_topk_accuracy(benchmark):
    table = ExperimentTable(
        "Fig 26",
        f"Top-{K} accuracy: Precision / RAG / Kendall",
        ["dataset", "variant", "precision", "RAG", "kendall"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        queries = bench_queries(name, 5)
        refs = {int(q): power_iteration_ppv(graph, int(q), tol=1e-10) for q in queries}
        small, large = _hub_counts(name)
        variants = {}
        for label, hubs in ((f"Fast-{small}", small), (f"Fast-{large}", large)):
            fp = fastppv_index(name, hubs, tol=TOL)
            variants[label] = lambda q, fp=fp: fp.query(q, max_expansions=FAST_BUDGET)
        variants["HGPA"] = hgpa_index(name, tol=TOL, prune=0.0).query  # exact
        variants["HGPA_ad"] = hgpa_index(name, tol=TOL, prune=1e-4).query
        scores = {}
        for label, fn in variants.items():
            precs, rags, kends = [], [], []
            for q, ref in refs.items():
                vec = fn(q)
                precs.append(precision_at_k(vec, ref, K))
                rags.append(rag_at_k(vec, ref, K))
                kends.append(kendall_tau_at_k(vec, ref, K))
            scores[label] = (
                statistics.median(precs),
                statistics.median(rags),
                statistics.median(kends),
            )
            table.add(name, label, *[round(v, 4) for v in scores[label]])
        assert scores["HGPA"][0] >= 0.99, f"{name}: exact HGPA must be ~perfect"
        assert scores["HGPA_ad"][0] >= 0.95, f"{name}: HGPA_ad near-full score"
    table.note("paper shape: HGPA perfect; HGPA_ad near-perfect; FastPPV "
               "loses precision and pair order under budget")
    table.emit()

    index = hgpa_index("email", tol=TOL)
    q0 = int(bench_queries("email", 1)[0])
    benchmark(lambda: index.query(q0))
