"""Table 6: Meetup graph sizes for the scalability study.

Paper: five graphs M1–M5 built from increasing numbers of Meetup events,
997K → 1.8M nodes and 83M → 194M edges (average degree ≈ 80–110).
Expected shape here: monotonically growing node and edge counts with the
same dense, event-clique character (scaled down).
"""

from repro import datasets
from repro.bench import ExperimentTable

GRAPHS = [f"meetup_m{i}" for i in range(1, 6)]


def test_table6_meetup_sizes(benchmark):
    table = ExperimentTable(
        "Table 6",
        "Graph sizes for scalability study (Meetup stand-ins)",
        ["graph", "nodes", "edges", "avg out-degree", "paper nodes", "paper edges"],
    )
    rows = []
    for name in GRAPHS:
        s = datasets.spec(name)
        g = datasets.load(name)
        rows.append((g.num_nodes, g.num_edges))
        table.add(
            name, g.num_nodes, g.num_edges,
            round(g.num_edges / g.num_nodes, 1), s.paper_nodes, s.paper_edges,
        )
    sizes = [r[0] for r in rows]
    edges = [r[1] for r in rows]
    assert sizes == sorted(sizes) and edges == sorted(edges)
    table.note("paper shape: monotone growth in nodes and edges, m/n ≈ 80–110")
    table.emit()

    benchmark(lambda: datasets.spec("meetup_m3").build().num_edges)
