"""Figure 25: ℓ-norm accuracy — FastPPV variants vs HGPA vs HGPA_ad.

Paper: exact HGPA is orders of magnitude more accurate than FastPPV on
both average-L1 and L∞, and even HGPA_ad consistently beats FastPPV.
Expected shape here: HGPA error ≈ tolerance-level; HGPA_ad ≤ FastPPV.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, fastppv_index, hgpa_index
from repro.core import power_iteration_ppv
from repro.metrics import average_l1, l_inf

DATASETS = ("email", "web")
TOL = 1e-4
FAST_BUDGET = 40  # scheduled expansions per query (the approximation knob)


def _hub_counts(name: str) -> tuple[int, int]:
    n = datasets.load(name).num_nodes
    return max(8, n // 100), max(32, n // 12)


def test_fig25_fastppv_accuracy(benchmark):
    table = ExperimentTable(
        "Fig 25",
        "Accuracy (vs power iteration @1e-10): FastPPV vs HGPA vs HGPA_ad",
        ["dataset", "variant", "avg L1", "L_inf"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        queries = bench_queries(name, 5)
        refs = {int(q): power_iteration_ppv(graph, int(q), tol=1e-10) for q in queries}
        small, large = _hub_counts(name)
        variants = {}
        for label, hubs in ((f"Fast-{small}", small), (f"Fast-{large}", large)):
            fp = fastppv_index(name, hubs, tol=TOL)
            variants[label] = lambda q, fp=fp: fp.query(q, max_expansions=FAST_BUDGET)
        hgpa = hgpa_index(name, tol=TOL, prune=0.0)  # exact: keep every value
        variants["HGPA"] = hgpa.query
        hgpa_ad = hgpa_index(name, tol=TOL, prune=1e-4)
        variants["HGPA_ad"] = hgpa_ad.query
        errs = {}
        for label, fn in variants.items():
            l1s = [average_l1(fn(q), ref) for q, ref in refs.items()]
            lis = [l_inf(fn(q), ref) for q, ref in refs.items()]
            errs[label] = (statistics.median(l1s), statistics.median(lis))
            table.add(name, label, *errs[label])
        fast_best = min(v[1] for k, v in errs.items() if k.startswith("Fast"))
        assert errs["HGPA"][1] <= fast_best, f"{name}: exact must beat approximate"
        assert errs["HGPA_ad"][1] <= fast_best * 1.5, (
            f"{name}: HGPA_ad should be no less accurate than FastPPV"
        )
    table.note("paper shape: HGPA ≫ FastPPV accuracy; HGPA_ad also beats it")
    table.emit()

    index = hgpa_index("email", tol=TOL)
    q0 = int(bench_queries("email", 1)[0])
    benchmark(lambda: index.query(q0))
