"""Figure 22: communication cost — HGPA vs Pregel+ vs Blogel (Web, Youtube).

Paper: HGPA beats Pregel+ by at least two orders of magnitude in bytes on
the wire; Blogel sits in between; engine traffic grows with machines.
Expected shape here: HGPA ≪ Blogel < Pregel+ at every machine count, with
engine traffic increasing in the machine count.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA
from repro.engines import BlogelPPR, PregelPPR

DATASETS = ("web", "youtube")
MACHINES = (2, 6, 10)
TOL = 1e-4


def test_fig22_engines_network(benchmark):
    table = ExperimentTable(
        "Fig 22",
        "Communication (KB/query): HGPA vs Pregel+ vs Blogel",
        ["dataset", "machines", "HGPA", "Blogel", "Pregel+", "Pregel+/HGPA"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        index = hgpa_index(name, tol=TOL)
        queries = bench_queries(name, 6)
        pregel_traffic = []
        for m in MACHINES:
            dep = DistributedHGPA(index, m)
            hgpa_kb = statistics.median(
                [dep.query(int(q))[1].communication_kb for q in queries]
            )
            q0 = int(queries[0])
            _, blog = BlogelPPR(graph, m).query(q0, tol=TOL)
            _, preg = PregelPPR(graph, m).query(q0, tol=TOL)
            pregel_traffic.append(preg.communication_kb)
            table.add(name, m, hgpa_kb, blog.communication_kb,
                      preg.communication_kb,
                      round(preg.communication_kb / max(1e-9, hgpa_kb), 1))
            assert hgpa_kb < preg.communication_kb / 5, (
                f"{name}@{m}: HGPA must ship far less than Pregel+"
            )
            assert blog.communication_kb < preg.communication_kb
        assert pregel_traffic[-1] > pregel_traffic[0], (
            "engine traffic must grow with machines"
        )
    table.note("paper shape: HGPA ≥100x less traffic than Pregel+; engine "
               "traffic grows with machines")
    table.note("scale note: at stand-in size Blogel's boundary bytes are "
               "comparable to HGPA's one-round result vectors; the paper's "
               "HGPA < Blogel gap re-opens as |E| grows (boundary ∝ edges, "
               "result ∝ PPV support)")
    table.emit()

    dep = DistributedHGPA(hgpa_index("web", tol=TOL), 6)
    q0 = int(bench_queries("web", 1)[0])
    benchmark(lambda: dep.query(q0))
