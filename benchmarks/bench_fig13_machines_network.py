"""Figure 13: HGPA query communication cost vs number of machines.

Paper: communication grows mildly with the machine count (more vectors
arrive at the coordinator, supports overlap) but stays under ~2 MB even on
the 3M-node PLD at 10 machines — Theorem 4's O(n·|V|) bound.  Expected
shape here: gentle growth with machines; every query ships exactly one
vector per machine.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA

DATASETS = ("web", "youtube", "pld")
MACHINES = (2, 4, 6, 8, 10)


def test_fig13_machines_network(benchmark):
    table = ExperimentTable(
        "Fig 13",
        "HGPA communication cost vs number of machines",
        ["dataset"] + [f"{m} mach (KB)" for m in MACHINES] + ["bound 10m (KB)"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        graph = datasets.load(name)
        queries = bench_queries(name, 10)
        row = [name]
        comms = []
        for m in MACHINES:
            dep = DistributedHGPA(index, m)
            vals = []
            for q in queries.tolist():
                _, rep = dep.query(int(q))
                vals.append(rep.communication_kb)
                assert len(rep.per_machine_bytes) == m  # one vector each
            comms.append(statistics.median(vals))
            row.append(comms[-1])
        bound_kb = 10 * (16 + 12 * graph.num_nodes + 8) / 1024
        row.append(round(bound_kb, 1))
        table.add(*row)
        assert comms[-1] >= comms[0] * 0.8, f"{name}: comm should not shrink much"
        assert comms[-1] <= bound_kb, f"{name}: Theorem 4 bound violated"
    table.note("paper shape: mild growth with machines, bounded by O(n·|V|)")
    table.emit()

    dep = DistributedHGPA(hgpa_index("web"), 10)
    q0 = int(bench_queries("web", 1)[0])
    benchmark(lambda: dep.query(q0))
