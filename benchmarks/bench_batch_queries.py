"""Batch query engine: per-hub loop vs vectorized vs batched throughput.

Not a paper figure — this measures the serving-side win of the stacked
CSC/CSR query layout shared by all index families.  Three evaluations of
the same Eq. 4/Eq. 6 combination are compared on the synthetic datasets:

* ``reference`` — the per-hub Python loop (one dict probe + axpy per hub),
* ``vectorized`` — one skeleton-row slice plus one ``CSC @ weights``
  product per query,
* ``batched`` — ``query_many``: one sparse matmul per query batch.

Expected shape: both matrix-form paths beat the per-hub loop by an order
of magnitude, and on the largest dataset the batched path is ≥ 3× the
loop.  Batched vs vectorized is a wash for large ``n`` — the dense
``(batch, n)`` output write dominates once each query touches every
node — so batching pays off most on the smaller graphs and in the
distributed engines (shared per-machine skeleton slicing).
"""

import numpy as np

from repro.bench import ExperimentTable, bench_queries, gpa_index, hgpa_index, time_queries

DATASETS = ("email", "web", "pld_full")
LARGEST = "pld_full"
PARTS = 8
NUM_QUERIES = 32


def test_batch_queries_flat(benchmark):
    table = ExperimentTable(
        "Batch Queries",
        "Flat (GPA) query engine: ms/query by evaluation strategy",
        ["dataset", "reference", "vectorized", "batched", "batched speedup"],
    )
    speedups = {}
    for name in DATASETS:
        index = gpa_index(name, PARTS)
        queries = bench_queries(name, NUM_QUERIES)
        ref_ms = time_queries(lambda q: index.query_reference(q), queries) * 1000
        vec_ms = time_queries(index.query, queries) * 1000
        bat_ms = time_queries(index.query_many, queries, batched=True) * 1000
        speedups[name] = ref_ms / max(1e-9, bat_ms)
        table.add(
            name,
            round(ref_ms, 3),
            round(vec_ms, 3),
            round(bat_ms, 3),
            round(speedups[name], 1),
        )
    table.note(
        "reference = per-hub Python loop; batched = query_many "
        f"({NUM_QUERIES} queries per call)"
    )
    table.emit()
    assert speedups[LARGEST] >= 3.0, (
        f"{LARGEST}: batched speedup {speedups[LARGEST]:.1f}x below 3x"
    )

    index = gpa_index(LARGEST, PARTS)
    queries = bench_queries(LARGEST, NUM_QUERIES)
    benchmark(lambda: index.query_many(queries))


def test_batch_queries_hgpa():
    table = ExperimentTable(
        "Batch Queries HGPA",
        "HGPA query engine: ms/query, per-query vs batched",
        ["dataset", "per-query", "batched", "speedup"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        queries = bench_queries(name, NUM_QUERIES)
        one_ms = time_queries(index.query, queries) * 1000
        bat_ms = time_queries(index.query_many, queries, batched=True) * 1000
        table.add(
            name, round(one_ms, 3), round(bat_ms, 3), round(one_ms / max(1e-9, bat_ms), 1)
        )
        out, _ = index.query_many(queries)
        sample = int(queries[0])
        np.testing.assert_allclose(out[0], index.query(sample), atol=1e-12)
    table.note(
        "HGPA's per-query path already evaluates each level as one stacked "
        "matmul, and level terms share no work across queries — batching "
        "here buys the uniform query_many API, not throughput; the big "
        "batching win is the flat engine above"
    )
    table.emit()
