"""Figure 14: HGPA query runtime vs number of partitioning levels.

Paper: runtime grows slightly with more levels (Eq. 7 visits one subgraph
per level), e.g. Email 5→10 ms over levels 1→5.  Expected shape here: a
mild increase in query work from the shallowest to the deepest hierarchy.
"""

from repro.bench import ExperimentTable, bench_queries, hgpa_index, time_queries

SWEEPS = {
    "email": (1, 2, 3, 4, 5),
    "web": (2, 4, 6, 8),
    "youtube": (3, 5, 7, 9),
}


def test_fig14_levels_runtime(benchmark):
    table = ExperimentTable(
        "Fig 14",
        "HGPA query runtime (ms, wall) vs number of partitioning levels",
        ["dataset"] + ["level " + str(i) for i in range(1, 6)],
    )
    for name, levels in SWEEPS.items():
        queries = bench_queries(name, 10)
        row = [name]
        walls = []
        for lv in levels:
            index = hgpa_index(name, max_levels=lv)
            wall = time_queries(index.query, queries) * 1000
            walls.append(wall)
            row.append(round(wall, 3))
        while len(row) < 6:
            row.append("-")
        table.add(*row)
    table.note("paper shape: runtime increases slightly with more levels")
    table.emit()

    index = hgpa_index("email", max_levels=5)
    q0 = int(bench_queries("email", 1)[0])
    benchmark(lambda: index.query(q0))
