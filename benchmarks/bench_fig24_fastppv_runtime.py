"""Figure 24: centralized runtime — FastPPV variants vs HGPA vs HGPA_ad.

Paper: exact HGPA is competitive with FastPPV (faster on Email, slower on
the bigger Web), and the adapted HGPA_ad (offline scores < 1e-4 dropped)
beats FastPPV by orders of magnitude on both.  Hub counts scale with the
stand-ins (the paper's Fast-100/1000 on 265K nodes ≈ 0.04 %/0.4 % of |V|).
Expected shape here: HGPA_ad fastest; HGPA within the same order as
FastPPV.
"""

from repro import datasets
from repro.bench import (
    ExperimentTable,
    bench_queries,
    fastppv_index,
    hgpa_index,
    time_queries,
)

DATASETS = ("email", "web")
TOL = 1e-4


def _hub_counts(name: str) -> tuple[int, int]:
    n = datasets.load(name).num_nodes
    return max(8, n // 100), max(32, n // 12)


def test_fig24_fastppv_runtime(benchmark):
    table = ExperimentTable(
        "Fig 24",
        "Centralized runtime (ms, wall): FastPPV vs HGPA vs HGPA_ad",
        ["dataset", "variant", "runtime (ms)"],
    )
    for name in DATASETS:
        queries = bench_queries(name, 8)
        small, large = _hub_counts(name)
        results = {}
        for label, hubs in ((f"Fast-{small}", small), (f"Fast-{large}", large)):
            fp = fastppv_index(name, hubs, tol=TOL)
            results[label] = time_queries(fp.query, queries) * 1000
        hgpa = hgpa_index(name, tol=TOL, prune=0.0)  # exact: keep every value
        results["HGPA"] = time_queries(hgpa.query, queries) * 1000
        hgpa_ad = hgpa_index(name, tol=TOL, prune=1e-4)
        results["HGPA_ad"] = time_queries(hgpa_ad.query, queries) * 1000
        for label, ms in results.items():
            table.add(name, label, round(ms, 3))
        fast_best = min(v for k, v in results.items() if k.startswith("Fast"))
        assert results["HGPA_ad"] <= fast_best * 1.5, (
            f"{name}: HGPA_ad should at least match FastPPV"
        )
    table.note("paper shape: HGPA_ad fastest by a wide margin; exact HGPA "
               "within the same order as FastPPV")
    table.emit()

    index = hgpa_index("email", tol=TOL, prune=1e-4)
    q0 = int(bench_queries("email", 1)[0])
    benchmark(lambda: index.query(q0))
