"""Fast-kernel dispatch: per-family baseline vs the active backend.

Not a paper figure — this measures the ``repro.kernels`` seam added for
the hot loops of the query stack: per-row top-k (dense and sparse), the
canonical CSC level product, the canonical sparse add, and the two
convergent solvers (full power iteration and the per-column-freezing
batched selective expansion).  Each family is timed twice through its
*public wrapper* — once pinned to the scipy baseline
(``kernels="scipy"``) and once on whatever backend the capability probe
picked — and the two results are asserted exactly equal on the way
(array-wise bitwise equality: the stack-wide exactness bar).

One end-to-end row repeats the comparison at the level users feel it:
a pruned GPA index serving a ``query_many_sparse`` + ``query_many_topk``
batch with its ``kernels`` field flipped between the two backends.

With numba installed (the CI optional-deps job, ``REPRO_KERNELS=numba``)
the recorded speedup must reach ≥ 2× on at least one hot kernel; without
it the active backend *is* scipy, the ratios hover around 1×, and the
run degrades to a dispatch-overhead + exactness check.  Either way the
payload lands in ``results/BENCH_kernels.json`` with the active backend
name and the full capability report, so recorded numbers are always
attributable to what actually dispatched.

Smoke mode (``REPRO_SMOKE=1``) shrinks the inputs so CI exercises every
family per push without timing flakiness.
"""

import json
import os
import time

import numpy as np
import scipy.sparse as sp

from repro import datasets
from repro.bench import (
    ExperimentTable,
    gpa_index,
    kernel_backend_info,
    results_dir,
    zipf_stream,
)
from repro.core.decomposition import as_view, partial_vectors
from repro.core.flat_index import topk_rows
from repro.core.power_iteration import power_iteration_ppv
from repro.core.sparse_ops import sparse_add, spgemm_scaled, topk_rows_sparse
from repro.kernels import active_kernels

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET = "email" if SMOKE else "web"
N = 20_000 if SMOKE else 120_000  # synthetic micro-kernel dimension
BATCH = 64 if SMOKE else 256
K = 50
REPEAT = 2 if SMOKE else 5
SEED = 7
# Kernels where a JIT win is expected and asserted (the pure-python
# inner loops the seam replaced); the solvers ride along unasserted —
# their scipy baselines are already vectorised matvecs.
HOT = ("topk_dense", "topk_sparse")


def _best_wall(fn, repeat=REPEAT) -> float:
    best = np.inf
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _canonical_random(rng, rows, cols, density, fmt) -> sp.spmatrix:
    mat = sp.random(rows, cols, density=density, format=fmt, rng=rng)
    mat.sort_indices()
    mat.sum_duplicates()
    return mat


def _assert_same_sparse(a, b, label):
    assert a.shape == b.shape, label
    assert np.array_equal(a.indptr, b.indptr), label
    assert np.array_equal(a.indices, b.indices), label
    assert np.array_equal(a.data, b.data), label


def _measure_family(label, run, check) -> dict:
    """Time ``run(backend)`` under scipy and the active backend; the two
    results must be exactly equal (``check`` raises otherwise)."""
    active = active_kernels()
    base_out = run("scipy")
    fast_out = run(active)
    check(base_out, fast_out)
    base_wall = _best_wall(lambda: run("scipy"))
    fast_wall = _best_wall(lambda: run(active))
    return {
        "kernel": label,
        "scipy_ms": base_wall * 1e3,
        "active_ms": fast_wall * 1e3,
        "speedup": base_wall / max(1e-12, fast_wall),
    }


def _micro_rows() -> list[dict]:
    rng = np.random.default_rng(SEED)
    rows = []

    dense = rng.random((BATCH, N))
    rows.append(
        _measure_family(
            "topk_dense",
            lambda kern: topk_rows(dense, K, kernels=kern),
            lambda a, b: (
                np.testing.assert_array_equal(a[0], b[0]),
                np.testing.assert_array_equal(a[1], b[1]),
            ),
        )
    )

    sparse_rows = _canonical_random(rng, BATCH, N, 300 / N, "csr")
    rows.append(
        _measure_family(
            "topk_sparse",
            lambda kern: topk_rows_sparse(sparse_rows, K, kernels=kern),
            lambda a, b: (
                np.testing.assert_array_equal(a[0], b[0]),
                np.testing.assert_array_equal(a[1], b[1]),
            ),
        )
    )

    w = _canonical_random(rng, N, N, 5 / N, "csr")
    part = _canonical_random(rng, BATCH, N, 200 / N, "csc")
    rows.append(
        _measure_family(
            "spgemm_csc",
            lambda kern: spgemm_scaled(part, w, 1.0 / 0.15, kernels=kern),
            lambda a, b: _assert_same_sparse(a, b, "spgemm_csc"),
        )
    )

    add_a = _canonical_random(rng, BATCH, N, 300 / N, "csr")
    add_b = _canonical_random(rng, BATCH, N, 300 / N, "csr")
    rows.append(
        _measure_family(
            "cs_add",
            lambda kern: sparse_add(add_a, add_b, kernels=kern),
            lambda a, b: _assert_same_sparse(a, b, "cs_add"),
        )
    )

    graph = datasets.load(DATASET)
    source = int(datasets.query_nodes(graph, 1, seed=SEED)[0])
    rows.append(
        _measure_family(
            "power_solve",
            lambda kern: power_iteration_ppv(graph, source, kernels=kern),
            lambda a, b: np.testing.assert_array_equal(a, b),
        )
    )

    view = as_view(graph)
    picks = datasets.query_nodes(graph, 40, seed=SEED + 1)
    hubs = np.sort(picks[:32])
    sources = np.sort(picks[32:])
    rows.append(
        _measure_family(
            "percol_solve",
            lambda kern: partial_vectors(
                view, hubs, sources, per_column=True, kernels=kern
            ),
            lambda a, b: (
                np.testing.assert_array_equal(a[0], b[0]),
                np.testing.assert_array_equal(a[1], b[1]),
            ),
        )
    )
    return rows


def _end_to_end_row() -> dict:
    """The whole-stack flip: one pruned GPA index, ``kernels`` switched."""
    index = gpa_index(DATASET, 4, prune=1e-3)
    queries = zipf_stream(index.graph.num_nodes, BATCH, seed=11)
    saved = index.kernels

    def run(kern):
        index.kernels = kern
        mat, _ = index.query_many_sparse(queries, collect_stats=False)
        ids, scores, _ = index.query_many_topk(queries, K)
        return mat, ids, scores

    try:
        base = run("scipy")
        fast = run(active_kernels())
        _assert_same_sparse(base[0], fast[0], "end_to_end sparse")
        np.testing.assert_array_equal(base[1], fast[1])
        np.testing.assert_array_equal(base[2], fast[2])
        base_wall = _best_wall(lambda: run("scipy"))
        fast_wall = _best_wall(lambda: run(active_kernels()))
    finally:
        index.kernels = saved
    return {
        "kernel": "end_to_end (sparse batch + topk)",
        "scipy_ms": base_wall * 1e3,
        "active_ms": fast_wall * 1e3,
        "speedup": base_wall / max(1e-12, fast_wall),
    }


def test_kernel_dispatch_speedups():
    info = kernel_backend_info()
    backend = info["kernel_backend"]
    rows = _micro_rows()
    rows.append(_end_to_end_row())

    table = ExperimentTable(
        "Kernels",
        f"Fast-kernel dispatch (active backend: {backend}): ms per call",
        ["kernel", "scipy ms", f"{backend} ms", "speedup"],
    )
    for row in rows:
        table.add(
            row["kernel"],
            round(row["scipy_ms"], 3),
            round(row["active_ms"], 3),
            round(row["speedup"], 2),
        )
    table.note(
        "every pair of results asserted exactly equal before timing — "
        "the speedup is never bought with drift"
    )
    if backend == "scipy":
        table.note(
            "active backend is the scipy baseline (numba unavailable or "
            "REPRO_KERNELS=scipy): ratios ~1x, exactness/dispatch check only"
        )
    table.emit()

    payload = {
        "smoke": SMOKE,
        "dataset": DATASET,
        "n": N,
        "batch": BATCH,
        "k": K,
        "repeat": REPEAT,
        **info,
        "rows": rows,
    }
    out = results_dir() / "BENCH_kernels.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if backend == "numba":
        hot = [r for r in rows if r["kernel"] in HOT]
        best = max(r["speedup"] for r in hot)
        assert best >= 2.0, (
            f"numba active but best hot-kernel speedup {best:.2f}x < 2x: "
            + ", ".join(f"{r['kernel']}={r['speedup']:.2f}x" for r in hot)
        )
