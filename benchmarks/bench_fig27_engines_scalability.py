"""Figure 27 (Appendix A): Pregel+/Blogel scalability on Meetup M1–M5.

Paper: engine runtime and communication grow linearly with graph size
(traffic is edge-proportional), and HGPA stays orders of magnitude below
both.  Expected shape here: monotone engine growth from M1 to M5 with
HGPA far underneath.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA
from repro.engines import BlogelPPR, PregelPPR

GRAPHS = [f"meetup_m{i}" for i in range(1, 6)]
MACHINES = 10
TOL = 1e-4


def test_fig27_engines_scalability(benchmark):
    table = ExperimentTable(
        "Fig 27",
        f"Engines vs HGPA on Meetup stand-ins ({MACHINES} machines)",
        ["graph", "edges", "HGPA (ms)", "Blogel (ms)", "Pregel+ (ms)",
         "Blogel KB", "Pregel+ KB"],
    )
    pregel_ms, pregel_kb = [], []
    for name in GRAPHS:
        graph = datasets.load(name)
        index = hgpa_index(name)
        dep = DistributedHGPA(index, MACHINES)
        queries = bench_queries(name, 5)
        hgpa_ms = statistics.median(
            [dep.query(int(q))[1].runtime_seconds * 1000 for q in queries]
        )
        q0 = int(queries[0])
        _, blog = BlogelPPR(graph, MACHINES).query(q0, tol=TOL)
        _, preg = PregelPPR(graph, MACHINES).query(q0, tol=TOL)
        pregel_ms.append(preg.runtime_seconds * 1000)
        pregel_kb.append(preg.communication_kb)
        table.add(
            name, graph.num_edges, hgpa_ms,
            blog.runtime_seconds * 1000, pregel_ms[-1],
            blog.communication_kb, pregel_kb[-1],
        )
        assert hgpa_ms < preg.runtime_seconds * 1000, f"{name}: HGPA must win"
    assert pregel_ms[-1] > pregel_ms[0], "engine runtime grows with size"
    assert pregel_kb[-1] > pregel_kb[0], "engine traffic grows with size"
    table.note("paper shape: engines grow linearly with edges; HGPA orders "
               "of magnitude faster throughout")
    table.emit()

    graph = datasets.load("meetup_m1")
    benchmark(lambda: BlogelPPR(graph, MACHINES).query(0, tol=1e-2))
