"""Real multiprocess execution: shard fan-out speedup and cost-model gap.

Not a paper figure — this measures the execution seam added for real
parallelism: the same :class:`~repro.sharding.router.ShardRouter` batch
served inline (``backend=None``, today's serial loop) versus fanned out
to worker processes (:class:`~repro.exec.backend.ProcessPoolBackend`),
where each shard's replica runs in its own process against read-only
shared-memory views of the stacked query buffers.

Two experiments on one pruned GPA index:

* **Shard fan-out** — a 4-shard router (one replica each, shared engine,
  caches off so every query computes) timed serial vs process pools of
  increasing size.  Exactness is asserted bitwise first — the seam's
  contract — then wall-clock speedup is reported per worker count.
* **Cost-model gap** — the distributed GPA runtime's *modeled* per-query
  runtime (the paper's Section 6.2.2 metric: slowest machine's modeled
  compute + transfer) against the *measured* wall of the same batches on
  the process backend, reported as a modeled/measured ratio per worker
  count.  The gap is recorded, not asserted: the model charges abstract
  entry/byte costs, the measurement includes real IPC.

The speedup assertion (≥ 1.5× at 4 workers) only runs on machines with
at least 4 CPUs — on fewer cores real processes cannot beat the serial
loop and the numbers are recorded without judgement.  Smoke mode
(``REPRO_SMOKE=1``) shrinks the dataset, uses 2 workers and asserts
exactness only, so CI exercises the whole worker path per push without
timing flakiness.  Machine-readable output lands in
``results/BENCH_multiprocess.json``.
"""

import json
import os
import time

import numpy as np

from repro.bench import (
    ExperimentTable,
    gpa_index,
    kernel_backend_info,
    results_dir,
    zipf_stream,
)
from repro.distributed import DistributedGPA
from repro.exec import ProcessPoolBackend
from repro.sharding.router import ShardRouter

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET, PRUNE = ("email", 1e-3) if SMOKE else ("web", 1e-3)
NUM_SHARDS = 4
GPA_PARTS = 4
BATCH = 64 if SMOKE else 256
REPEAT = 2 if SMOKE else 4
WORKER_COUNTS = [2] if SMOKE else [2, 4]
CPU_COUNT = os.cpu_count() or 1


def _best_wall(fn, repeat=REPEAT) -> float:
    best = np.inf
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _router(index, backend=None) -> ShardRouter:
    # One replica per shard, caches off: every row computes, so the
    # timing isolates the execution seam rather than cache luck.
    return ShardRouter([[index]] * NUM_SHARDS, backend=backend)


def test_multiprocess_backend():
    index = gpa_index(DATASET, GPA_PARTS, prune=PRUNE)
    n = index.graph.num_nodes
    queries = zipf_stream(n, BATCH, seed=11)

    serial_router = _router(index)
    d_serial, _ = serial_router.query_many(queries)
    s_serial, _ = serial_router.query_many_sparse(queries)
    serial_wall = _best_wall(lambda: serial_router.query_many(queries))

    serial_runtime = DistributedGPA(index, NUM_SHARDS)
    _, serial_reports = serial_runtime.query_many(queries)
    modeled_per_query = float(
        np.mean([r.runtime_seconds for r in serial_reports])
    )

    rows = []
    for workers in WORKER_COUNTS:
        with ProcessPoolBackend(workers) as pool:
            router = _router(index, backend=pool)
            d_proc, _ = router.query_many(queries)
            s_proc, _ = router.query_many_sparse(queries)
            # The seam's contract: worker answers are bitwise-identical.
            assert np.array_equal(d_serial, d_proc), "process != serial (dense)"
            assert np.array_equal(s_serial.data, s_proc.data)
            assert np.array_equal(s_serial.indices, s_proc.indices)
            assert np.array_equal(s_serial.indptr, s_proc.indptr)
            proc_wall = _best_wall(lambda: router.query_many(queries))

            runtime = DistributedGPA(index, NUM_SHARDS, backend=pool)
            d_rt, _ = runtime.query_many(queries)
            assert np.array_equal(d_rt, serial_runtime.query_many(queries)[0])
            measured_per_query = (
                _best_wall(
                    lambda: runtime.query_many(queries, collect_stats=False)
                )
                / queries.size
            )
            rows.append(
                {
                    "workers": int(workers),
                    "serial_ms_per_query": serial_wall / queries.size * 1e3,
                    "process_ms_per_query": proc_wall / queries.size * 1e3,
                    "speedup": serial_wall / proc_wall,
                    "modeled_s_per_query": modeled_per_query,
                    "measured_s_per_query": measured_per_query,
                    "model_gap": modeled_per_query / measured_per_query,
                }
            )

    table = ExperimentTable(
        "Multiprocess Execution",
        "Shard fan-out over worker processes vs the serial loop",
        [
            "workers",
            "serial ms/q",
            "process ms/q",
            "speedup",
            "modeled s/q",
            "measured s/q",
            "model gap",
        ],
    )
    for row in rows:
        table.add(
            row["workers"],
            round(row["serial_ms_per_query"], 4),
            round(row["process_ms_per_query"], 4),
            round(row["speedup"], 2),
            f"{row['modeled_s_per_query']:.3e}",
            f"{row['measured_s_per_query']:.3e}",
            round(row["model_gap"], 3),
        )
    table.note(
        f"{NUM_SHARDS} shards x 1 replica, caches off, batch {BATCH}, "
        f"{CPU_COUNT} CPU(s); exactness asserted bitwise per worker count"
    )
    table.note(
        "model gap = paper-metric modeled runtime / measured process wall "
        "per query (recorded, not asserted — the model is abstract costs)"
    )
    table.emit()

    payload = {
        "smoke": SMOKE,
        "dataset": DATASET,
        "prune": PRUNE,
        "num_shards": NUM_SHARDS,
        "batch": BATCH,
        "repeat": REPEAT,
        "cpu_count": CPU_COUNT,
        **kernel_backend_info(),
        "rows": rows,
    }
    out = results_dir() / "BENCH_multiprocess.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    for row in rows:
        assert row["model_gap"] > 0.0
    if not SMOKE and CPU_COUNT >= 4:
        best = max(row["speedup"] for row in rows if row["workers"] >= 4)
        assert best >= 1.5, (
            f"process fan-out speedup {best:.2f}x below 1.5x at >=4 workers "
            f"on a {CPU_COUNT}-CPU machine"
        )


if __name__ == "__main__":
    test_multiprocess_backend()
