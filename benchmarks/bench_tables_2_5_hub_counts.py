"""Tables 2–5: hub nodes per level of the HGPA hierarchy.

Paper: for each dataset the 2-way hierarchical partitioning yields hub
counts per level that are always much smaller than the node count, with the
level-0 split the largest and a rise near the leaves (Email 1208/84/34/…,
Web 6763/…/15115, etc.).  Expected shape here: the same U-profile with
``Σ|H_level| ≪ |V|``.
"""

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index

DATASETS = ("email", "web", "youtube", "pld")


def test_tables_2_5_hub_counts(benchmark):
    table = ExperimentTable(
        "Tables 2-5",
        "Hub nodes in each level (stand-in datasets)",
        ["dataset", "nodes", "edges", "levels", "total hubs", "hubs/level"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        graph = datasets.load(name)
        counts = index.hierarchy.hub_counts_per_level()
        table.add(
            name,
            graph.num_nodes,
            graph.num_edges,
            index.hierarchy.depth,
            sum(counts),
            " ".join(str(c) for c in counts),
        )
        assert sum(counts) < graph.num_nodes, "hubs must stay well below |V|"
    table.note("paper shape: |H| ≪ |V| at every level; level 0 largest")
    table.emit()

    # Timed op: one full hierarchy-chain walk (the query-side structure use).
    index = hgpa_index("email")
    queries = bench_queries("email", 10)
    benchmark(lambda: [index.hierarchy.chain(int(q)) for q in queries])
