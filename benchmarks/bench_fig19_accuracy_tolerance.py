"""Figure 19: ℓ-norm accuracy of HGPA vs tolerance ε (Email, Web).

Paper: both the average L1 and the L∞ difference against power iteration
shrink in lock-step with ε — "the ℓ-norms are nearly in the same order of
magnitude with the tolerance".  Expected shape here: error decreasing
monotonically with ε, staying within ~2 orders of ε.
"""

import statistics

from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.core import power_iteration_ppv
from repro import datasets
from repro.metrics import average_l1, l_inf

DATASETS = ("email", "web")
TOLERANCES = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6)


def test_fig19_accuracy_tolerance(benchmark):
    table = ExperimentTable(
        "Fig 19",
        "Accuracy vs tolerance (against power iteration at 1e-10)",
        ["dataset", "tolerance", "avg L1", "L_inf"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        queries = bench_queries(name, 5)
        refs = {int(q): power_iteration_ppv(graph, int(q), tol=1e-10) for q in queries}
        linfs = []
        for tol in TOLERANCES:
            index = hgpa_index(name, tol=tol)
            l1s, li = [], []
            for q, ref in refs.items():
                vec = index.query(q)
                l1s.append(average_l1(vec, ref))
                li.append(l_inf(vec, ref))
            linfs.append(statistics.median(li))
            table.add(name, f"{tol:.0e}", statistics.median(l1s), linfs[-1])
        assert linfs[-1] < linfs[0], f"{name}: error must shrink with ε"
        assert linfs[-1] < 1e-4, f"{name}: ε=1e-6 must be ~exact"
    table.note("paper shape: ℓ-norms track ε order-of-magnitude for order")
    table.emit()

    index = hgpa_index("email", tol=1e-4)
    q0 = int(bench_queries("email", 1)[0])
    benchmark(lambda: index.query(q0))
