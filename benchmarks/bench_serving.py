"""Serving layer: micro-batched throughput and cache hit rate, Zipf traffic.

Not a paper figure — this measures the query-*serving* win on top of the
batch engine: a stream of single-node requests with the skew of real PPR
traffic (a few hot users dominate — the "millions of users" shape) is
replayed through :class:`repro.serving.PPVService` and compared against
unbatched serving.

* **Throughput vs batch window** — the same arrival process replayed at
  several window sizes (window 0 = one backend call per request); wider
  windows form bigger ``query_many`` batches and amortise the skeleton
  slicing.  Expected: micro-batching beats unbatched serving by ≥ 2×.
* **Cache hit rate** — the LRU result cache against the stream's
  intrinsic repeat fraction (the upper bound: every first occurrence is
  a compulsory miss).  An unbounded budget should sit near that bound;
  a tight budget trades hits for memory.

Smoke mode (``REPRO_SMOKE=1``) shrinks the dataset and stream and skips
the throughput assertion, so CI exercises the full serving path on every
push without timing flakiness.
"""

import os
import time

import numpy as np

from repro.bench import ExperimentTable, gpa_index, zipf_stream
from repro.serving import PPVCache, PPVService, SimulatedClock

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET = "email" if SMOKE else "web"
PARTS = 4 if SMOKE else 8
STREAM = 256 if SMOKE else 1536
REPEAT = 1 if SMOKE else 3
MAX_BATCH = 64 if SMOKE else 256
ZIPF_EXP = 1.2
ARRIVAL_SPACING = 1e-4  # 10k requests/second
WINDOWS_MS = (0.0, 1.0, 5.0, 20.0)


def _serve_wall_seconds(index, stream, arrivals, window_s, cache=None) -> tuple:
    """One replay of the stream; returns (wall, service) — wall is real
    compute time, the arrival process advances only the simulated clock."""
    service = PPVService(
        index,
        window=window_s,
        max_batch=MAX_BATCH,
        cache=cache,
        clock=SimulatedClock(),
    )
    t0 = time.perf_counter()
    out = service.serve(stream, arrivals)
    wall = time.perf_counter() - t0
    # Spot-check exactness on the way (serving must never drift).
    sample = int(stream[0])
    np.testing.assert_allclose(out[0], index.query(sample), atol=1e-12, rtol=0)
    return wall, service


def test_serving_throughput_vs_window():
    index = gpa_index(DATASET, PARTS)
    n = index.graph.num_nodes
    stream = zipf_stream(n, STREAM, exponent=ZIPF_EXP)
    arrivals = np.arange(stream.size) * ARRIVAL_SPACING
    index.query_many(stream[:8])  # build the stacked ops once, untimed

    table = ExperimentTable(
        "Serving Throughput",
        f"PPVService on {DATASET}: throughput vs batch window "
        f"(Zipf {ZIPF_EXP} stream, {STREAM} requests)",
        ["window (ms)", "wall (s)", "qps", "mean batch", "speedup"],
    )
    qps_by_window = {}
    batch_by_window = {}
    for window_ms in WINDOWS_MS:
        wall = np.inf
        service = None
        for _ in range(REPEAT):
            w, service = _serve_wall_seconds(
                index, stream, arrivals, window_ms / 1000.0
            )
            wall = min(wall, w)
        qps_by_window[window_ms] = stream.size / wall
        batch_by_window[window_ms] = service.stats.mean_batch_size
        table.add(
            window_ms,
            round(wall, 4),
            round(qps_by_window[window_ms], 1),
            round(service.stats.mean_batch_size, 1),
            round(qps_by_window[window_ms] / qps_by_window[WINDOWS_MS[0]], 2),
        )
    table.note(
        "window 0 = unbatched serving (one query_many call per request); "
        f"arrivals spaced {ARRIVAL_SPACING * 1e3:.1f} ms apart, "
        f"max_batch {MAX_BATCH}"
    )
    table.emit()

    best = max(qps_by_window[w] for w in WINDOWS_MS[1:])
    widest = WINDOWS_MS[-1]
    assert batch_by_window[widest] > batch_by_window[WINDOWS_MS[0]], (
        "wider windows must form bigger batches"
    )
    if not SMOKE:
        speedup = best / qps_by_window[0.0]
        assert speedup >= 2.0, (
            f"micro-batched serving speedup {speedup:.2f}x below 2x"
        )


def test_serving_cache_hit_rate():
    index = gpa_index(DATASET, PARTS)
    n = index.graph.num_nodes
    stream = zipf_stream(n, STREAM, exponent=ZIPF_EXP)
    arrivals = np.arange(stream.size) * ARRIVAL_SPACING
    unique = np.unique(stream).size
    repeat_fraction = 1.0 - unique / stream.size
    row_bytes = n * 8

    table = ExperimentTable(
        "Serving Cache",
        f"PPV result cache on {DATASET}: hit rate vs byte budget "
        f"(Zipf {ZIPF_EXP} stream, repeat fraction {repeat_fraction:.2f})",
        ["budget (rows)", "hit rate", "evictions", "entries", "MB"],
    )
    hit_rates = {}
    for budget_rows in (unique + 1, max(2, unique // 8)):
        cache = PPVCache(budget_rows * row_bytes)
        _, service = _serve_wall_seconds(
            index, stream, arrivals, 0.005, cache=cache
        )
        hit_rates[budget_rows] = cache.stats.hit_rate
        table.add(
            budget_rows,
            round(cache.stats.hit_rate, 3),
            cache.stats.evictions,
            len(cache),
            round(cache.current_bytes / 1e6, 2),
        )
    table.note(
        "hit rate is bounded by the repeat fraction (first occurrences are "
        "compulsory misses; same-window repeats dedupe inside the batch)"
    )
    table.emit()

    unbounded = hit_rates[unique + 1]
    assert unbounded <= repeat_fraction + 1e-9
    # The skew makes repeats overwhelmingly hot-node repeats, so even with
    # window dedup the cache must capture most of them.
    assert unbounded >= 0.5 * repeat_fraction, (
        f"hit rate {unbounded:.3f} inconsistent with repeat fraction "
        f"{repeat_fraction:.3f}"
    )
    assert hit_rates[max(2, unique // 8)] <= unbounded + 1e-9
