"""Live updates: incremental update cost and serving during rollout.

Not a paper figure — the paper precomputes once; this measures the
dynamic-graph mode the serving stack opens up:

* **Update latency vs full rebuild** — applying one edge update through
  the incremental path (affected columns only) against rebuilding the
  whole index from scratch.  ``rebuild_fraction`` is the share of stored
  vectors the update actually recomputed; incremental cost should sit
  well below one rebuild.
* **Serving through a staggered rollout** — a Zipf query stream replayed
  through ``PPVService`` over a ``ShardRouter`` (2 replicas per shard)
  while an update rolls out one replica per shard at a time.  Every
  request keeps being answered — the dip is visible in modeled
  throughput, never as an outage — where a rebuild-and-restart would
  drop traffic for the entire rebuild.

Smoke mode (``REPRO_SMOKE=1``) shrinks the dataset and stream and skips
the timing assertion, so CI exercises the full update pipeline on every
push without timing flakiness.
"""

import os
import time

import numpy as np

from repro import datasets
from repro.bench import ExperimentTable, zipf_stream
from repro.core import EdgeUpdate, build_gpa_index
from repro.serving import PPVService, SimulatedClock, as_mutable_backend
from repro.sharding import ShardRouter, owner_map_from_partition

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET = "email" if SMOKE else "web"
PARTS = 4 if SMOKE else 8
NUM_UPDATES = 3 if SMOKE else 8
STREAM = 240 if SMOKE else 1536
NUM_SHARDS = 3
REPLICAS = 2
WINDOW_S = 0.005
ARRIVAL_SPACING = 1e-4
UPDATE_SECONDS = 0.01


def _random_updates(graph, count, seed=17):
    rng = np.random.default_rng(seed)
    updates = []
    src, dst = graph.edge_arrays()
    deg = graph.out_degrees
    present = set(zip(src.tolist(), dst.tolist()))
    for i in range(count):
        if i % 2 == 0:
            while True:
                u = int(rng.integers(0, graph.num_nodes))
                v = int(rng.integers(0, graph.num_nodes))
                if u != v and (u, v) not in present:
                    present.add((u, v))
                    updates.append(EdgeUpdate.insert(u, v))
                    break
        else:
            while True:
                j = int(rng.integers(0, src.size))
                u, v = int(src[j]), int(dst[j])
                if deg[u] > 1 and (u, v) in present:
                    present.discard((u, v))
                    updates.append(EdgeUpdate.delete(u, v))
                    break
    return updates


def _build_seconds(graph, partition):
    t0 = time.perf_counter()
    build_gpa_index(graph, PARTS, partition=partition)
    return time.perf_counter() - t0


def test_incremental_update_vs_full_rebuild():
    graph = datasets.load(DATASET)
    index = build_gpa_index(graph, PARTS)
    rebuild_s = _build_seconds(graph, index.partition)
    backend = as_mutable_backend(index)

    table = ExperimentTable(
        "Live Update Latency",
        f"GPA on {DATASET}: incremental edge updates vs full rebuild "
        f"({rebuild_s * 1e3:.0f} ms)",
        ["update", "latency (ms)", "rebuild_fraction", "affected", "speedup"],
    )
    latencies, fractions = [], []
    for upd in _random_updates(graph, NUM_UPDATES):
        t0 = time.perf_counter()
        receipt = backend.apply_update(upd)
        dt = time.perf_counter() - t0
        assert receipt.changed
        latencies.append(dt)
        fractions.append(receipt.stats.rebuild_fraction)
        table.add(
            str(upd),
            round(dt * 1e3, 2),
            round(receipt.stats.rebuild_fraction, 4),
            receipt.num_affected,
            round(rebuild_s / dt, 1),
        )
    table.note(
        "rebuild_fraction = share of stored vectors recomputed; speedup = "
        "full-rebuild seconds / update seconds"
    )
    table.note(
        f"mean rebuild_fraction {np.mean(fractions):.4f}, "
        f"median update {np.median(latencies) * 1e3:.2f} ms vs "
        f"{rebuild_s * 1e3:.0f} ms rebuild"
    )
    table.emit()

    assert np.mean(fractions) < 1.0
    if not SMOKE:
        assert np.median(latencies) < rebuild_s, (
            f"incremental update ({np.median(latencies):.3f}s) not cheaper "
            f"than full rebuild ({rebuild_s:.3f}s)"
        )


def test_staggered_rollout_serving_dip():
    graph = datasets.load(DATASET)
    index = build_gpa_index(graph, PARTS)
    rebuild_s = _build_seconds(graph, index.partition)
    n = graph.num_nodes
    clock = SimulatedClock()
    router = ShardRouter(
        [[index] * REPLICAS for _ in range(NUM_SHARDS)],
        policy="owner",
        owner_map=owner_map_from_partition(index.partition, NUM_SHARDS),
        cache_bytes=32 * n * 8,
        clock=clock,
    )
    service = PPVService(
        router, window=WINDOW_S, max_batch=64, clock=clock
    )
    stream = zipf_stream(n, STREAM)
    arrivals = np.arange(stream.size) * ARRIVAL_SPACING
    index.query_many(stream[:8])  # build stacked ops once, untimed

    update = _random_updates(graph, 1)[0]
    rollout = router.begin_rollout(update, update_seconds=UPDATE_SECONDS)
    thirds = np.array_split(np.arange(stream.size), 3)

    def _phase_busy():
        return sum(
            r.busy_seconds for shard in router.shards for r in shard.replicas
        )

    table = ExperimentTable(
        "Staggered Rollout Serving",
        f"PPVService over {NUM_SHARDS}x{REPLICAS} ShardRouter on {DATASET}: "
        "Zipf stream served across a one-replica-per-shard-at-a-time rollout",
        ["phase", "requests", "answered", "busy (s)", "modeled qps", "epoch"],
    )
    answered_total = 0
    for phase, rows in zip(("before", "mid-rollout", "after"), thirds):
        if phase == "mid-rollout":
            rollout.step()  # wave 0: replica 0 of each shard flips
        elif phase == "after":
            clock.advance(UPDATE_SECONDS)
            rollout.step()  # wave 1: rollout completes
            clock.advance(UPDATE_SECONDS)
        busy0 = _phase_busy()
        out = service.serve(stream[rows], arrivals[rows])
        busy = _phase_busy() - busy0
        answered = int(out.shape[0])
        answered_total += answered
        table.add(
            phase,
            rows.size,
            answered,
            round(busy, 4),
            round(rows.size / busy, 1) if busy > 0 else float("inf"),
            router.epoch,
        )
    table.note(
        f"every request answered ({answered_total}/{stream.size}); a "
        f"rebuild-and-restart would drop traffic for ~{rebuild_s * 1e3:.0f} ms"
    )
    table.emit()

    assert rollout.done and router.epoch == 1
    assert answered_total == stream.size, "requests dropped during rollout"
