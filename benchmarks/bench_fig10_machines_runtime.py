"""Figure 10: HGPA query runtime vs number of machines (Web/Youtube/PLD).

Paper: runtime drops near-linearly — doubling the machines roughly halves
the query time, because the hub work is evenly distributed.  Expected shape
here: monotone decrease in the compute component; at 2→8 machines the
per-machine work falls by ≈ 4×.
"""

import statistics

from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA

DATASETS = ("web", "youtube", "pld")
MACHINES = (2, 4, 6, 8, 10)


def test_fig10_machines_runtime(benchmark):
    table = ExperimentTable(
        "Fig 10",
        "HGPA runtime vs number of machines",
        ["dataset"] + [f"{m} mach (ms)" for m in MACHINES] + ["max work 2m/8m"],
    )
    for name in DATASETS:
        index = hgpa_index(name)
        queries = bench_queries(name, 10)
        row = [name]
        work, rts = {}, {}
        for m in MACHINES:
            dep = DistributedHGPA(index, m)
            runtimes, entries = [], []
            for q in queries.tolist():
                _, rep = dep.query(int(q))
                runtimes.append(rep.runtime_seconds * 1000)
                entries.append(max(rep.per_machine_entries))
            rts[m] = statistics.median(runtimes)
            row.append(rts[m])
            work[m] = statistics.median(entries)
        ratio = work[2] / max(1.0, work[8])
        row.append(round(ratio, 2))
        table.add(*row)
        assert ratio > 2.0, f"{name}: work must split near-linearly, got {ratio:.2f}"
        # Compute work splits ~linearly (asserted above); total runtime at
        # stand-in scale is dominated by shipping each machine's own vector,
        # whose size shrinks sublinearly (supports overlap), so the wall
        # ratio is softer than the paper's compute-dominated halving.
        assert rts[10] < rts[2] / 1.5, (
            f"{name}: 5x machines must cut runtime substantially "
            f"({rts[2]:.2f} → {rts[10]:.2f} ms)"
        )
    table.note("paper shape: doubling machines ≈ halves runtime (load-balanced)")
    table.emit()

    dep = DistributedHGPA(hgpa_index("web"), 6)
    q0 = int(bench_queries("web", 1)[0])
    benchmark(lambda: dep.query(q0))
