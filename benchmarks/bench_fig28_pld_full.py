"""Figure 28 (Appendix B): HGPA on PLD_full with 500–1500 processors.

Paper: on the 101M-node graph (ε = 1e-2, EC2, up to 1500 processors) the
query runtime stays under 2 s and is barely hurt by network cost because
only one communication round happens; offline time and per-processor space
keep shrinking with more processors, while communication grows into the MB
range.  Expected shape here (large stand-in + simulated processors):
runtime roughly flat, offline/space decreasing, communication growing.
"""

import statistics

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA, precompute_report

DATASET = "pld_full"
PROCESSORS = (500, 1000, 1500)
TOL = 1e-2  # the paper's setting for this experiment


def test_fig28_pld_full(benchmark):
    graph = datasets.load(DATASET)
    index = hgpa_index(DATASET, tol=TOL)
    queries = bench_queries(DATASET, 4)
    table = ExperimentTable(
        "Fig 28",
        f"HGPA on {DATASET} stand-in (n={graph.num_nodes}, ε={TOL})",
        ["processors", "runtime (ms)", "offline (s)", "space/proc (KB)",
         "communication (KB)"],
    )
    runtimes, offlines, spaces, comms = [], [], [], []
    for procs in PROCESSORS:
        dep = DistributedHGPA(index, procs)
        rts, nets = [], []
        for q in queries.tolist():
            _, rep = dep.query(int(q))
            rts.append(rep.runtime_seconds * 1000)
            nets.append(rep.communication_kb)
        pre = precompute_report(dep)
        runtimes.append(statistics.median(rts))
        offlines.append(pre.makespan_seconds)
        spaces.append(dep.max_machine_bytes() / 1024)
        comms.append(statistics.median(nets))
        table.add(procs, runtimes[-1], round(offlines[-1], 4),
                  round(spaces[-1], 1), comms[-1])
    table.note("paper shape: runtime ~flat (one communication round); "
               "offline/space shrink; communication grows with processors")
    table.emit()
    assert offlines[-1] <= offlines[0], "offline time must not grow"
    assert spaces[-1] <= spaces[0], "space per processor must not grow"
    assert comms[-1] >= comms[0], "communication grows with processors"
    # One communication round keeps runtime within a small factor.
    assert runtimes[-1] < runtimes[0] * 5

    dep = DistributedHGPA(index, 500)
    q0 = int(queries[0])
    benchmark(lambda: dep.query(q0))
