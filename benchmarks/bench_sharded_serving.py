"""Sharded serving: throughput vs shard count, routing-policy trade-offs.

Not a paper figure — this measures the serving-tier fan-out built on the
paper's one-round protocol: a Zipf-skewed request stream is replayed
through ``PPVService`` over a ``ShardRouter``, which splits every
micro-batch across per-partition shards.

* **Throughput vs shard count** — shards compute their share of each
  batch independently (nothing ships shard-to-shard), so the simulated
  parallel wall time of the run is the *slowest shard's* busy time
  (``ShardStats.makespan_seconds`` — the same max-over-machines shape as
  the paper's runtime metric).  Expected: modeled throughput scales with
  the shard count, sublinearly under owner-affinity routing when the
  Zipf head piles onto few partitions.
* **Routing policies** — owner-affinity keeps each node's repeats on one
  shard (per-shard caches see the full repeat fraction) at the price of
  load imbalance; round-robin and least-loaded flatten the load and
  dilute the caches.

Smoke mode (``REPRO_SMOKE=1``) shrinks the dataset and stream and skips
the scaling assertion, so CI exercises the full sharded path on every
push without timing flakiness.
"""

import os

import numpy as np

from repro.bench import ExperimentTable, gpa_index, zipf_stream
from repro.serving import PPVService, SimulatedClock
from repro.sharding import ShardRouter, owner_map_from_partition

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET = "email" if SMOKE else "web"
PARTS = 4 if SMOKE else 8
STREAM = 256 if SMOKE else 2048
MAX_BATCH = 64 if SMOKE else 256
SHARD_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
WINDOW_S = 0.005
ARRIVAL_SPACING = 1e-4  # 10k requests/second
CACHE_ROWS_PER_SHARD = 32


def _build_router(index, num_shards, policy, *, cache_rows=None):
    row_bytes = index.graph.num_nodes * 8
    return ShardRouter(
        [[index] for _ in range(num_shards)],
        policy=policy,
        owner_map=owner_map_from_partition(index.partition, num_shards),
        cache_bytes=cache_rows * row_bytes if cache_rows else None,
        clock=SimulatedClock(),
    )


def _serve(index, router, stream, arrivals):
    service = PPVService(
        router,
        window=WINDOW_S,
        max_batch=MAX_BATCH,
        clock=SimulatedClock(),
    )
    out = service.serve(stream, arrivals)
    # Spot-check exactness on the way (sharding must never drift).
    sample = int(stream[0])
    np.testing.assert_allclose(
        out[0], index.query(sample), atol=1e-12, rtol=0
    )
    return service


def test_sharded_throughput_vs_shard_count():
    index = gpa_index(DATASET, PARTS)
    n = index.graph.num_nodes
    stream = zipf_stream(n, STREAM)
    arrivals = np.arange(stream.size) * ARRIVAL_SPACING
    index.query_many(stream[:8])  # build the stacked ops once, untimed

    table = ExperimentTable(
        "Sharded Serving Throughput",
        f"ShardRouter on {DATASET}: modeled throughput vs shard count "
        f"(owner-affinity, Zipf stream, {STREAM} requests)",
        ["shards", "makespan (s)", "modeled qps", "imbalance", "speedup"],
    )
    makespans = {}
    for num_shards in SHARD_COUNTS:
        router = _build_router(index, num_shards, "owner")
        _serve(index, router, stream, arrivals)
        stats = router.stats()
        makespans[num_shards] = stats.makespan_seconds
        table.add(
            num_shards,
            round(stats.makespan_seconds, 4),
            round(stream.size / stats.makespan_seconds, 1),
            round(stats.load_imbalance, 2),
            round(makespans[SHARD_COUNTS[0]] / stats.makespan_seconds, 2),
        )
    table.note(
        "makespan = slowest shard's compute (shards work in parallel, "
        "nothing ships shard-to-shard); modeled qps = requests / makespan"
    )
    table.emit()

    if not SMOKE:
        speedup = makespans[SHARD_COUNTS[0]] / makespans[SHARD_COUNTS[-1]]
        assert speedup >= 1.5, (
            f"{SHARD_COUNTS[-1]}-shard speedup {speedup:.2f}x below 1.5x"
        )


def test_routing_policy_tradeoffs():
    index = gpa_index(DATASET, PARTS)
    n = index.graph.num_nodes
    stream = zipf_stream(n, STREAM)
    arrivals = np.arange(stream.size) * ARRIVAL_SPACING
    num_shards = SHARD_COUNTS[-1]

    table = ExperimentTable(
        "Sharded Routing Policies",
        f"ShardRouter on {DATASET}: {num_shards} shards, per-shard LRU of "
        f"{CACHE_ROWS_PER_SHARD} rows, Zipf stream",
        ["policy", "imbalance", "cache hit rate", "shard KB"],
    )
    hit_rates = {}
    imbalance = {}
    for policy in ("owner", "round_robin", "least_loaded"):
        router = _build_router(
            index, num_shards, policy, cache_rows=CACHE_ROWS_PER_SHARD
        )
        _serve(index, router, stream, arrivals)
        stats = router.stats()
        hit_rates[policy] = stats.cache.hit_rate
        imbalance[policy] = stats.load_imbalance
        table.add(
            policy,
            round(stats.load_imbalance, 2),
            round(stats.cache.hit_rate, 3),
            round(stats.total_bytes / 1024.0, 1),
        )
    table.note(
        "owner-affinity concentrates each node's repeats on one shard's "
        "cache; the load-flattening policies trade those hits away"
    )
    table.emit()

    assert imbalance["round_robin"] <= imbalance["owner"] + 1e-9
    assert imbalance["least_loaded"] <= imbalance["owner"] + 1e-9
    # Affinity must monetise the skew: strictly more cache hits than the
    # policies that scatter a node's repeats across shards.
    assert hit_rates["owner"] >= max(
        hit_rates["round_robin"], hit_rates["least_loaded"]
    )
