"""Ablation (Appendix D): hub selection strategy — exact Kőnig vs greedy vs
the 2-approximation.

The paper uses the approximate cover [39] and notes exactness only needs
*some* separator; smaller covers mean fewer hubs, hence less skeleton and
hub-partial storage.  Expected shape: Kőnig ≤ greedy ≤ 2-approx in hub
count on 2-way cuts, with identical separation guarantees.
"""

from repro import datasets
from repro.bench import ExperimentTable
from repro.partition import cover_cut_edges, partition_kway

DATASET = "web"


def test_ablation_vertex_cover(benchmark):
    graph = datasets.load(DATASET)
    labels = partition_kway(graph, 2, seed=0)
    src, dst = graph.edge_arrays()
    table = ExperimentTable(
        "Ablation vertex cover",
        f"Hub selection on the top-level cut of {DATASET}",
        ["method", "hubs", "covers all cut edges"],
    )
    crossing = labels[src] != labels[dst]
    cut_pairs = list(zip(src[crossing].tolist(), dst[crossing].tolist()))
    sizes = {}
    for method in ("exact", "greedy", "approx2"):
        hubs = cover_cut_edges(src, dst, labels, method=method, seed=0)
        hub_set = set(hubs.tolist())
        ok = all(a in hub_set or b in hub_set for a, b in cut_pairs)
        sizes[method] = hubs.size
        table.add(method, int(hubs.size), ok)
        assert ok, f"{method} must cover every cut edge"
    assert sizes["exact"] <= sizes["greedy"]
    assert sizes["exact"] <= sizes["approx2"]
    table.note("Kőnig is minimum on bipartite (2-way) cuts; heuristics pay "
               "extra hubs, which inflates skeleton storage")
    table.emit()

    benchmark(lambda: cover_cut_edges(src, dst, labels, method="exact"))
