"""Sparse query pipeline: CSR batch results vs dense batches vs per-query.

Not a paper figure — this measures the win of keeping batched query
results sparse end to end (``query_many_sparse``), closing the ROADMAP
item that HGPA batching could only *match* its per-query matmul path:
with sparse level-term accumulation, the dense ``(batch, n)``
accumulator disappears and batched HGPA beats per-query outright on
pruned indexes.

Three evaluations of the same queries are compared at serving batch
size on pruned indexes:

* ``per-query``  — the vectorised single-query path, once per node,
* ``dense``      — ``query_many(collect_stats=False)``: dense (batch, n),
* ``sparse``     — ``query_many_sparse(collect_stats=False)``: CSR.

Reported per engine: wall-clock ms/query, *peak intermediate bytes*
(tracemalloc around one batched call — the accumulators, weight blocks
and result buffers), and the result's nnz ratio.  Exactness is asserted
on the way (``toarray()`` equality — the stack-wide contract).

**Pruning scale note.**  The paper's ``HGPA_ad`` discards offline scores
below ``1e-4`` on graphs of 10⁶–10⁸ nodes, where the mean PPV entry is
``1/n ≈ 1e-8`` — the threshold sits orders of magnitude above the mean
and rows keep a few hundred entries.  The stand-in graphs are ~200×
smaller (mean entry ~1e-4), so ``1e-4`` prunes almost nothing; the
benchmark therefore scales the threshold so rows land in the same
few-hundred-entries support regime the paper's HGPA_ad produces.

Expected shape: batched-sparse beats the per-query path in wall-clock
on the pruned large stand-in and cuts peak intermediate bytes ≥ 5× at
batch 256; the flat (GPA) sparse path beats its dense batch in both.
Machine-readable output lands in ``results/BENCH_sparse_queries.json``
alongside the text table.

Smoke mode (``REPRO_SMOKE=1``) shrinks the dataset and relaxes the
timing assertions so CI exercises the full sparse pipeline per push
without timing flakiness.
"""

import json
import os
import time
import tracemalloc

import numpy as np

from repro.bench import (
    ExperimentTable,
    gpa_index,
    hgpa_index,
    kernel_backend_info,
    results_dir,
    zipf_stream,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
BATCH = 256
REPEAT = 2 if SMOKE else 4
# (engine, dataset, scaled HGPA_ad-regime prune) — see the module docstring.
HGPA_CONFIG = ("web", 1e-3) if SMOKE else ("pld_full", 2e-3)
GPA_CONFIG = ("email", 1e-3) if SMOKE else ("web", 1e-3)
GPA_PARTS = 4 if SMOKE else 8


def _best_wall(fn, repeat=REPEAT) -> float:
    best = np.inf
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_bytes(fn) -> int:
    """Peak python-heap bytes allocated during one call (numpy buffers
    route through the traced allocator, so dense accumulators and sparse
    blocks are both captured)."""
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _measure(name, index, queries) -> dict:
    n = index.graph.num_nodes
    # Warm the stacked/level ops so one-time builds are not charged.
    index.query_many(queries[:8])
    index.query_many_sparse(queries[:8])
    dense, _ = index.query_many(queries, collect_stats=False)
    sparse, _ = index.query_many_sparse(queries, collect_stats=False)
    assert (sparse.toarray() == dense).all(), f"{name}: sparse != dense"
    per_query = _best_wall(
        lambda: [index.query(int(u)) for u in queries.tolist()]
    )
    dense_wall = _best_wall(
        lambda: index.query_many(queries, collect_stats=False)
    )
    sparse_wall = _best_wall(
        lambda: index.query_many_sparse(queries, collect_stats=False)
    )
    peak_dense = _peak_bytes(
        lambda: index.query_many(queries, collect_stats=False)
    )
    peak_sparse = _peak_bytes(
        lambda: index.query_many_sparse(queries, collect_stats=False)
    )
    return {
        "engine": name,
        "n": int(n),
        "batch": int(queries.size),
        "per_query_ms": per_query / queries.size * 1e3,
        "dense_batch_ms": dense_wall / queries.size * 1e3,
        "sparse_batch_ms": sparse_wall / queries.size * 1e3,
        "peak_dense_bytes": peak_dense,
        "peak_sparse_bytes": peak_sparse,
        "peak_ratio": peak_dense / max(1, peak_sparse),
        "nnz_per_row": sparse.nnz / max(1, queries.size),
        "nnz_ratio": sparse.nnz / max(1, queries.size) / n,
    }


def test_sparse_query_pipeline():
    hgpa_ds, hgpa_prune = HGPA_CONFIG
    gpa_ds, gpa_prune = GPA_CONFIG
    configs = [
        (
            f"HGPA_ad ({hgpa_ds}, prune={hgpa_prune:g})",
            hgpa_index(hgpa_ds, prune=hgpa_prune),
            hgpa_ds,
            hgpa_prune,
        ),
        (
            f"GPA ({gpa_ds}, prune={gpa_prune:g})",
            gpa_index(gpa_ds, GPA_PARTS, prune=gpa_prune),
            gpa_ds,
            gpa_prune,
        ),
    ]
    table = ExperimentTable(
        "Sparse Queries",
        "Sparse vs dense batch pipeline: ms/query and peak intermediate MB",
        [
            "engine",
            "per-query",
            "dense batch",
            "sparse batch",
            "peak dense MB",
            "peak sparse MB",
            "peak ratio",
            "nnz/row",
        ],
    )
    rows = []
    for name, index, dataset, prune in configs:
        queries = zipf_stream(index.graph.num_nodes, BATCH, seed=11)
        row = _measure(name, index, queries)
        row["dataset"] = dataset
        row["prune"] = prune
        rows.append(row)
        table.add(
            name,
            round(row["per_query_ms"], 4),
            round(row["dense_batch_ms"], 4),
            round(row["sparse_batch_ms"], 4),
            round(row["peak_dense_bytes"] / 1e6, 2),
            round(row["peak_sparse_bytes"] / 1e6, 2),
            round(row["peak_ratio"], 1),
            round(row["nnz_per_row"]),
        )
    table.note(
        f"batch {BATCH}, collect_stats=False (serving fast mode); peak = "
        "tracemalloc high-water of one batched call"
    )
    table.note(
        "prune scaled to the stand-ins so rows keep a few hundred entries "
        "— the support regime paper-scale HGPA_ad produces (see docstring)"
    )
    table.emit()
    payload = {
        "smoke": SMOKE,
        "batch": BATCH,
        "repeat": REPEAT,
        **kernel_backend_info(),
        "rows": rows,
    }
    out = results_dir() / "BENCH_sparse_queries.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    hgpa_row, gpa_row = rows
    if SMOKE:
        # CI: exercise the full pipeline, assert only the deterministic
        # shape (peak allocation and support) — no wall-clock races on
        # shared runners.
        assert hgpa_row["peak_ratio"] >= 2.0
        assert gpa_row["peak_ratio"] >= 2.0
        assert hgpa_row["nnz_ratio"] < 0.5
    else:
        # The ROADMAP close-out: batched-sparse HGPA_ad beats its
        # per-query path, with ≥5× smaller peak intermediates at 256.
        assert hgpa_row["sparse_batch_ms"] < hgpa_row["per_query_ms"], (
            f"sparse {hgpa_row['sparse_batch_ms']:.3f} ms/query not below "
            f"per-query {hgpa_row['per_query_ms']:.3f}"
        )
        assert hgpa_row["peak_ratio"] >= 5.0, (
            f"peak reduction {hgpa_row['peak_ratio']:.1f}x below 5x"
        )
        assert gpa_row["sparse_batch_ms"] < gpa_row["dense_batch_ms"]
        assert gpa_row["peak_ratio"] >= 2.0
