"""Figure 17: effect of multi-way partitioning (2/4/8/16/64-way) on Web.

Paper: runtime decreases slightly with wider fan-out, but pre-computation
space and time grow substantially — which is why 2-way is the default.
Expected shape here: space and offline cost grow from fan-out 2 to the
widest; query runtime stays in the same band.
"""

import math

from repro.bench import ExperimentTable, bench_queries, hgpa_index, time_queries

DATASET = "web"
FANOUTS = (2, 4, 8, 16, 64)
TARGET_LEAVES = 256  # keep the number of leaf subgraphs comparable


def _levels_for(fanout: int) -> int:
    return max(1, round(math.log(TARGET_LEAVES, fanout)))


def test_fig17_multiway(benchmark):
    queries = bench_queries(DATASET, 10)
    table = ExperimentTable(
        "Fig 17",
        f"Multi-way partitioning on {DATASET}",
        ["fanout", "levels", "runtime (ms)", "space (MB)", "offline (s)", "hubs"],
    )
    space = {}
    for fanout in FANOUTS:
        levels = _levels_for(fanout)
        index = hgpa_index(DATASET, fanout=fanout, max_levels=levels)
        wall = time_queries(index.query, queries) * 1000
        space[fanout] = index.total_bytes() / 1e6
        table.add(
            fanout,
            levels,
            round(wall, 3),
            round(space[fanout], 2),
            round(index.offline_seconds(), 3),
            int(index.hierarchy.hub_nodes().size),
        )
    table.note("paper shape: wider fanout ⇒ more pre-computation space/time; "
               "2-way is the space/time sweet spot")
    table.emit()
    assert space[64] > space[2], "wide fanout must cost more space"

    index = hgpa_index(DATASET, fanout=2, max_levels=_levels_for(2))
    q0 = int(queries[0])
    benchmark(lambda: index.query(q0))
