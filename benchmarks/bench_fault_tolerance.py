"""Fault tolerance under canned chaos schedules: availability and cost.

Not a paper figure — this measures the serving stack's resilience layer
(:mod:`repro.faults` + ``ShardRouter(resilience=...)``) under three
canned fault schedules, replayed deterministically on a
``SimulatedClock``:

* **single-replica-loss** — one replica of one shard crashes for half
  the run; retries/hedging route around it.  Availability >= 0.99 is
  *asserted*: a replica loss with a healthy sibling must be invisible.
* **straggler-storm** — one replica of every shard turns slow for the
  whole run; tail-latency hedging pays duplicate attempts to keep p99
  bounded.
* **flaky-fleet** — transient worker deaths sprinkled across the fleet
  plus a dropped and a truncated payload; every fault is survived by a
  bounded retry.

Every schedule's answers are checked bitwise against the fault-free run
(the exactness contract), and the retry/hedge overhead — extra
attempts, backoff charged, extra wire bytes — is recorded without
judgement.  Machine-readable output lands in
``results/BENCH_fault_tolerance.json``.
"""

import json
import os

import numpy as np

from repro.bench import ExperimentTable, gpa_index, results_dir, zipf_stream
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.serving import PPVService, SimulatedClock
from repro.sharding import RetryPolicy, ShardRouter

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DATASET = "email" if SMOKE else "web"
PARTS = 4
NUM_SHARDS = 2
REPLICAS = 2
STREAM = 300 if SMOKE else 2000
MEAN_GAP_S = 0.002
WINDOW_S = 0.005
SLO_S = 0.1
POLICY = RetryPolicy(
    max_attempts=4,
    backoff_seconds=0.002,
    timeout_seconds=0.25,
    hedge_after_seconds=0.02,
    degrade=True,
)


def _arrivals(size: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(MEAN_GAP_S, size=size))


def _schedules(horizon: float) -> dict[str, FaultPlan]:
    h = float(horizon)
    single = FaultPlan(
        (FaultEvent(0.25 * h, "crash", shard=0, replica=0, duration=0.5 * h),)
    )
    storm = FaultPlan(
        tuple(
            FaultEvent(0.0, "latency", shard=s, replica=0,
                       duration=h + 1.0, delay=0.05)
            for s in range(NUM_SHARDS)
        )
    )
    flaky = FaultPlan(
        tuple(
            FaultEvent((i + 1) * h / 8.0, "kill_worker",
                       shard=i % NUM_SHARDS, replica=i % REPLICAS, count=1)
            for i in range(6)
        )
        + (
            FaultEvent(0.4 * h, "drop", shard=0, count=1),
            FaultEvent(0.6 * h, "truncate", shard=1, count=1),
        )
    )
    return {
        "single-replica-loss": single,
        "straggler-storm": storm,
        "flaky-fleet": flaky,
    }


def _run(index, stream, arrivals, plan=None):
    clock = SimulatedClock()
    router = ShardRouter(
        [[index] * REPLICAS] * NUM_SHARDS,
        clock=clock,
        cache_bytes=1 << 20,
        resilience=POLICY,
    )
    if plan is not None:
        FaultInjector(plan).attach(router)
    service = PPVService(
        router, window=WINDOW_S, clock=clock, slo_seconds=SLO_S, degrade=True
    )
    tickets = service.replay(zip(arrivals.tolist(), stream.tolist()))
    return tickets, service, router


def _row(name, tickets, service, router, oracle, base_bytes):
    # Exactness first: every answered row must match the fault-free run
    # bitwise; shed rows must be explicit zeros.
    for ticket, want in zip(tickets, oracle):
        if ticket.shed:
            assert not ticket._value.any()
        else:
            assert np.array_equal(ticket.result, want), (
                f"{name}: non-degraded answer differs from fault-free run"
            )
    answered = [t.latency_seconds for t in tickets if not t.shed]
    res = router.res_stats
    attempts = max(1, res.attempts)
    return {
        "schedule": name,
        "availability": service.stats.availability,
        "p99_latency_ms": float(np.percentile(answered, 99)) * 1e3,
        "mean_latency_ms": float(np.mean(answered)) * 1e3,
        "slo_met": service.stats.slo_met,
        "slo_missed": service.stats.slo_missed,
        "degraded": service.stats.degraded,
        "shed": service.stats.shed,
        "retries": res.retries,
        "hedges": res.hedges,
        "hedge_wins": res.hedge_wins,
        "deadline_exceeded": res.deadline_exceeded,
        "deadline_overruns": res.deadline_overruns,
        "worker_retries": res.worker_retries,
        "extra_attempt_overhead": res.extra_attempts / attempts,
        "backoff_seconds": res.backoff_seconds,
        "wire_overhead": router.meter.total_bytes / max(1, base_bytes) - 1.0,
        "injected": dict(
            sorted(router.fault_injector.injected.items())
            if router.fault_injector
            else []
        ),
    }


def test_fault_tolerance():
    index = gpa_index(DATASET, PARTS)
    stream = zipf_stream(index.graph.num_nodes, STREAM)
    arrivals = _arrivals(STREAM)

    base_tickets, base_service, base_router = _run(index, stream, arrivals)
    assert all(t.status == "ok" for t in base_tickets)
    oracle = [t.result for t in base_tickets]
    base_bytes = base_router.meter.total_bytes

    rows = [
        _row("fault-free", base_tickets, base_service, base_router,
             oracle, base_bytes)
    ]
    for name, plan in _schedules(arrivals[-1]).items():
        tickets, service, router = _run(index, stream, arrivals, plan)
        rows.append(_row(name, tickets, service, router, oracle, base_bytes))

    table = ExperimentTable(
        "Fault Tolerance",
        f"{NUM_SHARDS} shards x {REPLICAS} replicas on {DATASET}: canned "
        f"chaos schedules, {STREAM} requests, answers checked bitwise",
        [
            "schedule",
            "avail",
            "p99 ms",
            "degr",
            "shed",
            "retries",
            "hedges",
            "overhead",
        ],
    )
    for row in rows:
        table.add(
            row["schedule"],
            round(row["availability"], 4),
            round(row["p99_latency_ms"], 2),
            row["degraded"],
            row["shed"],
            row["retries"],
            row["hedges"],
            round(row["extra_attempt_overhead"], 3),
        )
    table.note(
        "overhead = extra attempts (retries+hedges) / total attempts; "
        "wire overhead and backoff charged are in the JSON rows"
    )
    table.note(
        "every non-shed answer equals the fault-free run bitwise — the "
        "schedules change cost and availability, never values"
    )
    table.emit()

    by_name = {row["schedule"]: row for row in rows}
    # The headline number: losing one replica with a healthy sibling must
    # not cost answers.
    assert by_name["single-replica-loss"]["availability"] >= 0.99
    assert by_name["straggler-storm"]["hedges"] > 0
    assert by_name["flaky-fleet"]["retries"] > 0

    payload = {
        "smoke": SMOKE,
        "dataset": DATASET,
        "num_shards": NUM_SHARDS,
        "replicas_per_shard": REPLICAS,
        "stream": STREAM,
        "mean_gap_seconds": MEAN_GAP_S,
        "window_seconds": WINDOW_S,
        "slo_seconds": SLO_S,
        "policy": {
            "max_attempts": POLICY.max_attempts,
            "backoff_seconds": POLICY.backoff_seconds,
            "timeout_seconds": POLICY.timeout_seconds,
            "hedge_after_seconds": POLICY.hedge_after_seconds,
            "breaker_failures": POLICY.breaker_failures,
        },
        "rows": rows,
    }
    out = results_dir() / "BENCH_fault_tolerance.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
