"""Figure 23: centralized HGPA vs the power-iteration method.

Paper: on a single machine, HGPA answers queries at least 3.5× faster than
power iteration (much more on Email and Web).  Expected shape here: the
same win, measured in wall-clock on identical hardware, same tolerance.
"""

from repro import datasets
from repro.bench import ExperimentTable, bench_queries, hgpa_index, time_queries
from repro.core import power_iteration_ppv

DATASETS = ("email", "web", "youtube")
TOL = 1e-4


def test_fig23_centralized(benchmark):
    table = ExperimentTable(
        "Fig 23",
        "Centralized runtime (ms, wall): power iteration vs HGPA",
        ["dataset", "PowerIteration", "HGPA", "speedup"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        index = hgpa_index(name, tol=TOL)
        queries = bench_queries(name, 8)
        pi_ms = time_queries(
            lambda q: power_iteration_ppv(graph, q, tol=TOL), queries
        ) * 1000
        hg_ms = time_queries(index.query, queries) * 1000
        speedup = pi_ms / max(1e-9, hg_ms)
        table.add(name, round(pi_ms, 2), round(hg_ms, 2), round(speedup, 1))
        assert speedup > 3.5, f"{name}: speedup {speedup:.1f}x below 3.5x"
    table.note("paper shape: HGPA ≥3.5x faster than power iteration; the "
               "speedup grows with graph size")
    table.emit()

    index = hgpa_index("web", tol=TOL)
    q0 = int(bench_queries("web", 1)[0])
    benchmark(lambda: index.query(q0))
