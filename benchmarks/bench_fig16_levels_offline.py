"""Figure 16: HGPA pre-computation time vs number of partitioning levels.

Paper: offline time decreases with more levels — iterations run inside
exponentially smaller subgraphs.  Expected shape here: deepest hierarchy
pre-computes faster than the shallowest.
"""

from repro.bench import ExperimentTable, hgpa_index

SWEEPS = {
    "email": (1, 2, 3, 4, 5),
    "web": (2, 4, 6, 8),
    "youtube": (3, 5, 7, 9),
}


def test_fig16_levels_offline(benchmark):
    table = ExperimentTable(
        "Fig 16",
        "HGPA pre-computation time (s, one machine) vs partitioning levels",
        ["dataset"] + ["level " + str(i) for i in range(1, 6)],
    )
    for name, levels in SWEEPS.items():
        row = [name]
        offline = []
        for lv in levels:
            index = hgpa_index(name, max_levels=lv)
            offline.append(index.offline_seconds())
            row.append(round(offline[-1], 3))
        while len(row) < 6:
            row.append("-")
        table.add(*row)
        assert offline[-1] < offline[0] * 1.3, (
            f"{name}: deeper hierarchies should not pre-compute slower"
        )
    table.note("paper shape: offline time decreases as subgraphs shrink")
    table.emit()

    benchmark(lambda: hgpa_index("email", max_levels=5).offline_seconds())
