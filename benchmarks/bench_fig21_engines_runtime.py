"""Figure 21: query runtime — HGPA vs Pregel+ vs Blogel (Web, Youtube).

Paper: HGPA is 10–100× faster than power iteration on both engines;
Pregel+/Blogel get *slower* with more machines (every superstep is a
communication round), while HGPA gets faster.  Expected shape here:
HGPA ≪ Blogel < Pregel+ in modeled runtime at every machine count.
"""

import statistics

from repro.bench import ExperimentTable, bench_queries, hgpa_index
from repro.distributed import DistributedHGPA
from repro.engines import BlogelPPR, PregelPPR
from repro import datasets

DATASETS = ("web", "youtube")
MACHINES = (2, 6, 10)
TOL = 1e-4


def test_fig21_engines_runtime(benchmark):
    table = ExperimentTable(
        "Fig 21",
        "Runtime (ms, cost model): HGPA vs Pregel+ vs Blogel",
        ["dataset", "machines", "HGPA", "Blogel", "Pregel+", "speedup vs Pregel+"],
    )
    for name in DATASETS:
        graph = datasets.load(name)
        index = hgpa_index(name, tol=TOL)
        queries = bench_queries(name, 6)
        for m in MACHINES:
            dep = DistributedHGPA(index, m)
            hgpa_ms = statistics.median(
                [dep.query(int(q))[1].runtime_seconds * 1000 for q in queries]
            )
            q0 = int(queries[0])
            _, blog = BlogelPPR(graph, m).query(q0, tol=TOL)
            _, preg = PregelPPR(graph, m).query(q0, tol=TOL)
            blog_ms = blog.runtime_seconds * 1000
            preg_ms = preg.runtime_seconds * 1000
            table.add(name, m, hgpa_ms, blog_ms, preg_ms,
                      round(preg_ms / max(1e-9, hgpa_ms), 1))
            assert hgpa_ms < blog_ms < preg_ms, (
                f"{name}@{m}: expected HGPA < Blogel < Pregel+"
            )
            assert preg_ms / hgpa_ms > 10, "HGPA must win by ≥10x"
    table.note("paper shape: HGPA faster by orders of magnitude; engines "
               "slow down as machines increase")
    table.emit()

    graph = datasets.load("web")
    benchmark(lambda: PregelPPR(graph, 6).query(0, tol=1e-2))
