from setuptools import find_packages, setup

setup(
    name="repro-exact-ppr",
    version="1.0.0",
    description=(
        "Reproduction of 'Distributed Algorithms on Exact Personalized "
        "PageRank' (SIGMOD 2017): exact PPV indexes, a simulated "
        "share-nothing cluster, and a sharded serving stack"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy", "scipy"],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Typing :: Typed",
    ],
)
